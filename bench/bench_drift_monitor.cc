// Drift-detection overhead: the autopilot's DriftMonitor runs inside the
// serving process, so an observe() — PSI + KS over the recent-prediction
// window plus the counter signals — must stay far below the poll interval.
// This bench measures observe() cost across window sizes, for the quiet
// path (no drift) and the firing path (shifted distribution), and the cost
// of the PredictionService::recent_predictions() snapshot it consumes.
//
// Flags:
//   --observations N  observe() calls per configuration (default 2000)
//   --json PATH       machine-readable results (default BENCH_drift_monitor.json;
//                     empty string disables)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "serve/drift_monitor.h"
#include "support/rng.h"
#include "support/table.h"

using namespace tcm;

namespace {

std::vector<double> synthetic(std::size_t n, double mean, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.normal(mean, 0.2));
  return xs;
}

struct Row {
  std::size_t window = 0;
  bool shifted = false;
  double us_per_observe = 0;
  double observes_per_sec = 0;
  std::uint64_t triggers = 0;
};

Row run(std::size_t window, bool shifted, int observations) {
  serve::DriftMonitorOptions options;
  options.min_samples = 32;
  options.cooldown_observations = 10;
  serve::DriftMonitor monitor(options);
  serve::ServeStats stats;
  const std::vector<double> reference = synthetic(window, 1.0, 1);
  const std::vector<double> current = synthetic(window, shifted ? 3.0 : 1.0, 2);
  monitor.observe(stats, reference);  // freezes the baseline

  Row row;
  row.window = window;
  row.shifted = shifted;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < observations; ++i) {
    stats.requests += 100;
    if (monitor.observe(stats, current).triggered) ++row.triggers;
  }
  const double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                             .count();
  row.us_per_observe = seconds / observations * 1e6;
  row.observes_per_sec = observations / seconds;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  int observations = 2000;
  std::string json_path = "BENCH_drift_monitor.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--observations") && i + 1 < argc)
      observations = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
      json_path = argv[++i];
  }

  std::vector<Row> rows;
  for (std::size_t window : {256u, 1024u, 4096u})
    for (bool shifted : {false, true}) rows.push_back(run(window, shifted, observations));

  Table table({"window", "traffic", "us/observe", "observes/sec", "triggers"});
  for (const Row& row : rows)
    table.add_row({std::to_string(row.window), row.shifted ? "shifted" : "quiet",
                   Table::fmt(row.us_per_observe, 2), Table::fmt(row.observes_per_sec, 0),
                   std::to_string(row.triggers)});
  std::printf("drift monitor observe() cost\n%s", table.to_string().c_str());

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    json << "{\n  \"bench\": \"drift_monitor\",\n  \"observations\": " << observations
         << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      json << "    {\"window\": " << row.window << ", \"traffic\": \""
           << (row.shifted ? "shifted" : "quiet") << "\", \"us_per_observe\": "
           << row.us_per_observe << ", \"observes_per_sec\": " << row.observes_per_sec
           << ", \"triggers\": " << row.triggers << "}" << (i + 1 < rows.size() ? "," : "")
           << "\n";
    }
    json << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
