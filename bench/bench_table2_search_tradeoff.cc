// Table 2: the tradeoff between search time and quality of the found code
// transformations. For each benchmark:
//   - search-time improvement = accounted toolchain seconds of BSE divided
//     by those of BSM (left table) or MCTS (right table). BSE pays compile +
//     30 runs per candidate; BSM pays model inference; MCTS pays inference
//     plus the execution of its retained top-k set.
//   - performance degradation = how much slower the code found by the
//     model-guided search runs compared to the code found by BSE.
// Paper averages: BSM 106.5x faster with 15% degradation; MCTS 11.8x faster
// with 12.5% degradation.
#include "common.h"
#include "benchsuite/benchmarks.h"
#include "search/beam_search.h"
#include "search/mcts.h"

#include <cstdio>

using namespace tcm;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::BenchEnv::from_args(argc, argv);
  model::CostModel& cost_model = env.cost_model();
  const auto benchmarks = benchsuite::paper_benchmarks(env.paper_scale ? 1 : 4);

  search::BeamSearchOptions beam_opt;
  beam_opt.beam_width = 4;
  search::MctsOptions mcts_opt;
  mcts_opt.iterations = 150;
  mcts_opt.top_k = 5;

  Table bsm_table({"benchmark", "search time improvement", "performance degradation"});
  Table mcts_table({"benchmark", "search time improvement", "performance degradation"});
  double bsm_speedup_sum = 0, bsm_degr_sum = 0, mcts_speedup_sum = 0, mcts_degr_sum = 0;

  for (const auto& [name, program] : benchmarks) {
    search::ExecutionEvaluator bse_eval{sim::Executor()};
    const auto bse = search::beam_search(program, bse_eval, beam_opt);

    search::ModelEvaluator bsm_eval(&cost_model, model::FeatureConfig::fast());
    const auto bsm = search::beam_search(program, bsm_eval, beam_opt);

    search::ModelEvaluator mcts_model_eval(&cost_model, model::FeatureConfig::fast());
    search::ExecutionEvaluator mcts_exec_eval{sim::Executor()};
    const auto mcts = search::mcts_search(program, mcts_model_eval, mcts_exec_eval, mcts_opt);

    // Noise-free times of the final code found by each method.
    sim::MachineModel machine;
    const double t_bse =
        machine.execution_time_seconds(transforms::apply_schedule(program, bse.best_schedule));
    const double t_bsm =
        machine.execution_time_seconds(transforms::apply_schedule(program, bsm.best_schedule));
    const double t_mcts =
        machine.execution_time_seconds(transforms::apply_schedule(program, mcts.best_schedule));

    const double bsm_ratio = bse.accounted_seconds / std::max(1e-9, bsm.accounted_seconds);
    const double mcts_ratio = bse.accounted_seconds / std::max(1e-9, mcts.accounted_seconds);
    const double bsm_degr = std::max(0.0, (t_bsm - t_bse) / t_bse);
    const double mcts_degr = std::max(0.0, (t_mcts - t_bse) / t_bse);

    bsm_table.add_row({name, Table::fmt(bsm_ratio, 0) + "x",
                       Table::fmt(100.0 * bsm_degr, 0) + " %"});
    mcts_table.add_row({name, Table::fmt(mcts_ratio, 0) + "x",
                        Table::fmt(100.0 * mcts_degr, 0) + " %"});
    bsm_speedup_sum += bsm_ratio;
    bsm_degr_sum += bsm_degr;
    mcts_speedup_sum += mcts_ratio;
    mcts_degr_sum += mcts_degr;
    std::printf("  [%s done]\n", name.c_str());
    std::fflush(stdout);
  }
  const double n = static_cast<double>(benchmarks.size());
  bsm_table.add_row({"Average", Table::fmt(bsm_speedup_sum / n, 1) + "x",
                     Table::fmt(100.0 * bsm_degr_sum / n, 1) + " %"});
  mcts_table.add_row({"Average", Table::fmt(mcts_speedup_sum / n, 1) + "x",
                      Table::fmt(100.0 * mcts_degr_sum / n, 1) + " %"});
  env.emit("table2_left_beam_search_with_model", bsm_table);
  env.emit("table2_right_mcts", mcts_table);
  std::printf("paper averages: BSM 106.5x / 15%% ; MCTS 11.8x / 12.5%%\n");
  return 0;
}
