// Microbenchmarks (google-benchmark): throughput of the pieces that bound
// the end-to-end pipeline — featurization, model inference (autograd and
// tape-free fused paths), schedule application, machine-model evaluation,
// and NN training steps. Besides the console table, results are written as
// google-benchmark JSON to BENCH_micro.json so the perf trajectory is
// trackable across PRs.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "benchsuite/benchmarks.h"
#include "datagen/dataset_builder.h"
#include "model/train.h"
#include "nn/inference.h"
#include "nn/optim.h"
#include "sim/machine_model.h"
#include "transforms/apply.h"

using namespace tcm;

namespace {

const ir::Program& conv_program() {
  static const ir::Program p = benchsuite::make_convolution(8, 3, 256, 256, 2, 3);
  return p;
}

transforms::Schedule conv_schedule() {
  transforms::Schedule s;
  s.interchanges.push_back({0, 4, 5});
  s.tiles.push_back({0, 2, {32, 32}});
  s.unrolls.push_back({0, 2});
  s.parallels.push_back({0, 0});
  s.vectorizes.push_back({0, 2});  // innermost is the 3-wide kernel loop
  return s;
}

void BM_ApplySchedule(benchmark::State& state) {
  const ir::Program& p = conv_program();
  const transforms::Schedule s = conv_schedule();
  for (auto _ : state) benchmark::DoNotOptimize(transforms::apply_schedule(p, s));
}
BENCHMARK(BM_ApplySchedule);

void BM_LegalityCheck(benchmark::State& state) {
  const ir::Program& p = conv_program();
  const transforms::Schedule s = conv_schedule();
  for (auto _ : state) benchmark::DoNotOptimize(transforms::is_legal(p, s));
}
BENCHMARK(BM_LegalityCheck);

void BM_Featurize(benchmark::State& state) {
  const ir::Program& p = conv_program();
  const transforms::Schedule s = conv_schedule();
  const model::FeatureConfig cfg = model::FeatureConfig::fast();
  for (auto _ : state) benchmark::DoNotOptimize(model::featurize(p, s, cfg));
}
BENCHMARK(BM_Featurize);

void BM_MachineModelEval(benchmark::State& state) {
  const ir::Program t = transforms::apply_schedule(conv_program(), conv_schedule());
  sim::MachineModel m;
  for (auto _ : state) benchmark::DoNotOptimize(m.execution_time_seconds(t));
}
BENCHMARK(BM_MachineModelEval);

void BM_ProgramGeneration(benchmark::State& state) {
  datagen::RandomProgramGenerator gen;
  std::uint64_t seed = 0;
  for (auto _ : state) benchmark::DoNotOptimize(gen.generate(seed++));
}
BENCHMARK(BM_ProgramGeneration);

void BM_CostModelInference(benchmark::State& state) {
  datagen::DatasetBuildOptions opt;
  opt.num_programs = 1;
  opt.schedules_per_program = static_cast<int>(state.range(0));
  opt.features = model::FeatureConfig::fast();
  const model::Dataset ds = datagen::build_dataset(opt);
  Rng rng(1);
  model::CostModel m(model::ModelConfig::fast(), rng);
  for (auto _ : state) benchmark::DoNotOptimize(model::predict(m, ds, 64));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CostModelInference)->Arg(1)->Arg(32);

// The tentpole comparison: the autograd forward (tape construction per op)
// vs the tape-free fused infer_batch on identical batches. The fused
// benchmark also reports allocs/pred from the arena counter — ~0 once warm.
model::Dataset inference_dataset(int schedules) {
  datagen::DatasetBuildOptions opt;
  opt.num_programs = 1;
  opt.schedules_per_program = schedules;
  opt.features = model::FeatureConfig::fast();
  return datagen::build_dataset(opt);
}

void BM_CostModelForwardAutograd(benchmark::State& state) {
  const model::Dataset ds = inference_dataset(static_cast<int>(state.range(0)));
  const auto batches = model::make_batches(ds, 64);
  Rng rng(1);
  model::CostModel m(model::ModelConfig::fast(), rng);
  Rng frng(0);
  for (auto _ : state)
    for (const model::Batch& b : batches)
      benchmark::DoNotOptimize(m.forward_batch(b, /*training=*/false, frng));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CostModelForwardAutograd)->Arg(1)->Arg(32);

void BM_CostModelInferBatch(benchmark::State& state) {
  const model::Dataset ds = inference_dataset(static_cast<int>(state.range(0)));
  const auto batches = model::make_batches(ds, 64);
  Rng rng(1);
  model::CostModel m(model::ModelConfig::fast(), rng);
  nn::InferenceArena arena;
  for (const model::Batch& b : batches) m.infer_batch(b, arena);  // warm the arena
  const std::uint64_t allocs_before = arena.heap_allocations();
  std::int64_t preds = 0;
  for (auto _ : state) {
    for (const model::Batch& b : batches) {
      benchmark::DoNotOptimize(&m.infer_batch(b, arena));
      preds += b.batch_size();
    }
  }
  state.counters["allocs_per_pred"] =
      preds > 0 ? static_cast<double>(arena.heap_allocations() - allocs_before) /
                      static_cast<double>(preds)
                : 0.0;
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CostModelInferBatch)->Arg(1)->Arg(32);

void BM_TrainingStep(benchmark::State& state) {
  datagen::DatasetBuildOptions opt;
  opt.num_programs = 2;
  opt.schedules_per_program = 32;
  opt.features = model::FeatureConfig::fast();
  const model::Dataset ds = datagen::build_dataset(opt);
  const auto batches = model::make_batches(ds, 32);
  Rng rng(1);
  model::CostModel m(model::ModelConfig::fast(), rng);
  nn::AdamW opt_adam(m.parameters(), {});
  Rng trng(2);
  std::size_t bi = 0;
  for (auto _ : state) {
    const model::Batch& b = batches[bi++ % batches.size()];
    opt_adam.zero_grad();
    nn::Variable pred = m.forward_batch(b, true, trng);
    nn::Variable loss = nn::log_ratio_loss(pred, b.targets);
    nn::backward(loss);
    opt_adam.step();
  }
}
BENCHMARK(BM_TrainingStep);

void BM_Matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  nn::Tensor a(n, n), b(n, n);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = static_cast<float>(rng.uniform_real());
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = static_cast<float>(rng.uniform_real());
  for (auto _ : state) benchmark::DoNotOptimize(nn::matmul(a, b));
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(256);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): defaults --benchmark_out to
// BENCH_micro.json (JSON format) so every run leaves a machine-readable
// report for cross-PR tracking; explicit --benchmark_out flags still win.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Exact flag only: "--benchmark_out_format" alone must not suppress the
    // default report path.
    if (arg == "--benchmark_out" || arg.rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (!has_out) std::cout << "wrote BENCH_micro.json\n";
  benchmark::Shutdown();
  return 0;
}
