#include "common.h"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "nn/serialize.h"
#include "support/log.h"

namespace tcm::bench {

BenchEnv BenchEnv::from_args(int argc, char** argv) {
  BenchEnv env;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper") == 0) env.paper_scale = true;
    else if (std::strcmp(argv[i], "--fresh") == 0) env.fresh = true;
  }
  std::filesystem::create_directories(env.artifacts_dir);
  return env;
}

datagen::DatasetBuildOptions BenchEnv::dataset_options() const {
  datagen::DatasetBuildOptions opt;
  opt.num_programs = paper_scale ? 4000 : 400;
  opt.schedules_per_program = paper_scale ? 32 : 16;
  opt.features = model::FeatureConfig::fast();
  opt.generator.max_depth = 5;
  opt.generator.max_extent = 1024;
  opt.generator.max_iterations = 1LL << 27;
  opt.seed = 2021;
  return opt;
}

model::ModelConfig BenchEnv::model_config() const {
  // The architecture is always the paper's; widths scale with the budget.
  return paper_scale ? model::ModelConfig::paper() : model::ModelConfig::fast();
}

model::TrainOptions BenchEnv::train_options() const {
  model::TrainOptions t;
  t.epochs = paper_scale ? 300 : 70;
  t.max_lr = 1e-3;  // the paper's One Cycle peak
  t.verbose = true;
  t.log_every = 20;
  return t;
}

const model::Dataset& BenchEnv::dataset() {
  if (dataset_) return *dataset_;
  const std::string path = artifacts_dir + "/dataset_" + tag() + ".bin";
  if (!fresh && std::filesystem::exists(path)) {
    log_info() << "bench: loading cached dataset " << path;
    dataset_ = std::make_unique<model::Dataset>(model::Dataset::load(path));
  } else {
    log_info() << "bench: generating dataset (" << dataset_options().num_programs
               << " programs x " << dataset_options().schedules_per_program << " schedules)";
    dataset_ = std::make_unique<model::Dataset>(datagen::build_dataset(dataset_options()));
    dataset_->save(path);
  }
  return *dataset_;
}

const model::DatasetSplit& BenchEnv::split() {
  if (!split_)
    split_ = std::make_unique<model::DatasetSplit>(model::split_by_program(dataset(), 0.6, 0.2, 7));
  return *split_;
}

void BenchEnv::train_predictor(model::SpeedupPredictor& predictor,
                               const std::string& cache_name, double epochs_factor) {
  const std::string path = artifacts_dir + "/" + cache_name + "_" + tag() + ".bin";
  if (!fresh && std::filesystem::exists(path)) {
    log_info() << "bench: loading cached weights " << path;
    if (nn::load_parameters(predictor.module(), path)) return;
  }
  model::TrainOptions topt = train_options();
  topt.epochs = std::max(1, static_cast<int>(topt.epochs * epochs_factor));
  log_info() << "bench: training " << predictor.name() << " for " << topt.epochs << " epochs";
  model::train_model(predictor, split().train, &split().validation, topt);
  nn::save_parameters(predictor.module(), path);
}

model::CostModel& BenchEnv::cost_model() {
  if (!cost_model_) {
    Rng rng(17);
    cost_model_ = std::make_unique<model::CostModel>(model_config(), rng);
    train_predictor(*cost_model_, "cost_model", 1.0);
  }
  return *cost_model_;
}

model::LstmOnlyModel& BenchEnv::lstm_only_model() {
  if (!lstm_only_) {
    Rng rng(18);
    lstm_only_ = std::make_unique<model::LstmOnlyModel>(model_config(), rng);
    train_predictor(*lstm_only_, "lstm_only", 0.6);
  }
  return *lstm_only_;
}

model::FeedForwardModel& BenchEnv::feedforward_model() {
  if (!feedforward_) {
    Rng rng(19);
    feedforward_ = std::make_unique<model::FeedForwardModel>(model_config(), rng);
    train_predictor(*feedforward_, "feedforward", 0.6);
  }
  return *feedforward_;
}

baselines::HalideCostModel& BenchEnv::halide_model() {
  if (halide_) return *halide_;
  Rng rng(20);
  halide_ = std::make_unique<baselines::HalideCostModel>(baselines::HalideModelConfig{}, rng);
  const std::string path = artifacts_dir + "/halide_model_" + tag() + ".bin";
  if (!fresh && std::filesystem::exists(path) && nn::load_parameters(*halide_, path))
    return *halide_;
  baselines::HalideDataOptions data_opt;
  data_opt.num_programs = paper_scale ? 2000 : 300;
  data_opt.schedules_per_program = 12;
  log_info() << "bench: building Halide-baseline training data ("
             << data_opt.num_programs << " programs)";
  const auto samples = baselines::build_halide_samples(data_opt);
  baselines::HalideTrainOptions topt;
  topt.epochs = paper_scale ? 120 : 50;
  topt.verbose = true;
  baselines::train_halide_model(*halide_, samples, topt);
  nn::save_parameters(*halide_, path);
  return *halide_;
}

void BenchEnv::emit(const std::string& name, const Table& table) const {
  std::printf("\n== %s ==\n%s", name.c_str(), table.to_string().c_str());
  const std::string path = artifacts_dir + "/" + name + "_" + tag() + ".csv";
  if (table.write_csv(path)) std::printf("(csv: %s)\n", path.c_str());
  std::fflush(stdout);
}

}  // namespace tcm::bench
