// Throughput of the async autoscheduling job service, cold vs warm.
//
// Three measurements against one SearchJobManager over one PredictionService:
//   cold      every program searched from scratch (empty schedule memory)
//   warm      identical programs resubmitted — every job answered from the
//             ScheduleMemory without searching (the recurring-workload path)
//   concurrent  N client threads submitting distinct programs against a
//             multi-worker pool (end-to-end jobs/sec under contention)
//
// The headline numbers are cold_jobs_per_sec vs warm_jobs_per_sec (the
// speedup factor schedule reuse buys a recurring workload) emitted to
// BENCH_search_service.json for the CI perf trajectory.
//
// Flags:
//   --programs N   distinct programs per configuration (default 24)
//   --clients N    concurrent client threads (default 4)
//   --json PATH    output path (default BENCH_search_service.json; "" disables)
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "datagen/generator.h"
#include "jobs/job_manager.h"
#include "model/cost_model.h"
#include "serve/prediction_service.h"
#include "support/table.h"

using namespace tcm;
using Clock = std::chrono::steady_clock;

namespace {

jobs::SearchJobInfo wait_terminal(jobs::SearchJobManager& manager, const std::string& id) {
  for (;;) {
    const std::optional<jobs::SearchJobInfo> info = manager.info(id);
    if (!info) return {};
    if (info->state == jobs::JobState::kDone || info->state == jobs::JobState::kFailed ||
        info->state == jobs::JobState::kCancelled)
      return *info;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

double per_sec(Clock::time_point start, int jobs) {
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return seconds > 0 ? jobs / seconds : 0;
}

}  // namespace

int main(int argc, char** argv) {
  int num_programs = 24;
  int clients = 4;
  std::string json_path = "BENCH_search_service.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--programs" && i + 1 < argc) num_programs = std::atoi(argv[++i]);
    else if (arg == "--clients" && i + 1 < argc) clients = std::atoi(argv[++i]);
    else if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
  }

  // Untrained fast-config model: the bench measures service machinery
  // (queueing, search loop, memory), not model quality.
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::ServeOptions serve_options;
  serve_options.num_threads = 2;
  serve_options.features = model::FeatureConfig::fast();
  serve_options.max_queue_latency = std::chrono::microseconds(200);
  serve::PredictionService service(cost_model, serve_options);

  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  std::vector<ir::Program> programs;
  for (std::uint64_t seed = 0; static_cast<int>(programs.size()) < num_programs && seed < 4096;
       ++seed) {
    ir::Program p = gen.generate(seed);
    if (!p.comps.empty()) programs.push_back(std::move(p));
  }
  num_programs = static_cast<int>(programs.size());

  jobs::SearchJobManagerOptions options;
  options.workers = 1;  // sequential: per-job cost, not pool parallelism
  options.queue_cap = 0;
  options.max_finished_jobs = static_cast<std::size_t>(num_programs) * 4;
  jobs::SearchJobManager manager(service, options);

  // --- cold: every program searched ----------------------------------------
  std::int64_t cold_evaluations = 0;
  Clock::time_point start = Clock::now();
  for (const ir::Program& p : programs) {
    jobs::SearchJobRequest request;
    request.program = p;
    const jobs::SearchJobInfo info = wait_terminal(manager, manager.submit(request));
    if (info.state != jobs::JobState::kDone) {
      std::cerr << "cold job failed: " << info.error << "\n";
      return 1;
    }
    cold_evaluations += info.evaluations;
  }
  const double cold_jobs_per_sec = per_sec(start, num_programs);

  // --- warm: identical resubmits answered from memory ----------------------
  start = Clock::now();
  for (const ir::Program& p : programs) {
    jobs::SearchJobRequest request;
    request.program = p;
    const jobs::SearchJobInfo info = wait_terminal(manager, manager.submit(request));
    if (info.state != jobs::JobState::kDone || !info.reused) {
      std::cerr << "warm job was not served from memory\n";
      return 1;
    }
  }
  const double warm_jobs_per_sec = per_sec(start, num_programs);

  // --- concurrent clients, multi-worker pool, fresh (in-memory) manager ----
  jobs::SearchJobManagerOptions pool_options;
  pool_options.workers = clients;
  pool_options.queue_cap = 0;
  pool_options.max_finished_jobs = static_cast<std::size_t>(num_programs) * 4;
  jobs::SearchJobManager pool(service, pool_options);
  start = Clock::now();
  std::vector<std::thread> threads;
  std::vector<int> failures(static_cast<std::size_t>(clients), 0);
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      for (int i = c; i < num_programs; i += clients) {
        jobs::SearchJobRequest request;
        request.program = programs[static_cast<std::size_t>(i)];
        const jobs::SearchJobInfo info = wait_terminal(pool, pool.submit(request));
        if (info.state != jobs::JobState::kDone) ++failures[static_cast<std::size_t>(c)];
      }
    });
  for (std::thread& t : threads) t.join();
  for (int f : failures)
    if (f > 0) {
      std::cerr << "concurrent jobs failed\n";
      return 1;
    }
  const double concurrent_jobs_per_sec = per_sec(start, num_programs);

  const double reuse_speedup = cold_jobs_per_sec > 0 ? warm_jobs_per_sec / cold_jobs_per_sec : 0;
  Table table({"config", "jobs_per_sec", "notes"});
  table.add_row({"cold", std::to_string(cold_jobs_per_sec),
                 std::to_string(cold_evaluations) + " evaluations total"});
  table.add_row({"warm_memory_hit", std::to_string(warm_jobs_per_sec),
                 std::to_string(reuse_speedup) + "x vs cold"});
  table.add_row({"concurrent_x" + std::to_string(clients),
                 std::to_string(concurrent_jobs_per_sec), "distinct programs"});
  std::cout << table.to_string() << "\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n";
    out << "  \"bench\": \"search_service\",\n";
    out << "  \"programs\": " << num_programs << ",\n";
    out << "  \"clients\": " << clients << ",\n";
    out << "  \"cold_jobs_per_sec\": " << cold_jobs_per_sec << ",\n";
    out << "  \"cold_evaluations\": " << cold_evaluations << ",\n";
    out << "  \"warm_jobs_per_sec\": " << warm_jobs_per_sec << ",\n";
    out << "  \"warm_reuse_speedup\": " << reuse_speedup << ",\n";
    out << "  \"concurrent_jobs_per_sec\": " << concurrent_jobs_per_sec << "\n";
    out << "}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
