// Hot-swap under sustained load: what does flipping the serving model cost?
//
// Closed-loop clients hammer a PredictionService while the main thread
// alternates swap_model() between two checkpoints at a fixed cadence.
// Throughput is sampled per interval, so the table shows the dip (if any)
// around swaps; a steady-state phase without swaps is measured first as the
// baseline. Every response is checked for liveness (no drops, no errors).
//
// Flags:
//   --seconds N      measured seconds per phase (default 3)
//   --clients N      closed-loop client threads (default 4)
//   --swap-ms N      milliseconds between swaps in the swap phase (default 50)
//   --csv PATH       also write the per-phase table as CSV
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/generator.h"
#include "model/cost_model.h"
#include "serve/prediction_service.h"
#include "support/stats.h"
#include "support/table.h"

using namespace tcm;

namespace {

struct Workload {
  std::vector<ir::Program> programs;
  std::vector<std::size_t> pair_program;
  std::vector<transforms::Schedule> pair_schedule;
  std::size_t size() const { return pair_schedule.size(); }
};

Workload make_workload(int num_programs, int schedules_per_program) {
  Workload w;
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  datagen::RandomScheduleGenerator sgen;
  Rng rng(99);
  for (int p = 0; p < num_programs; ++p) {
    w.programs.push_back(gen.generate(static_cast<std::uint64_t>(p)));
    for (int s = 0; s < schedules_per_program; ++s) {
      w.pair_program.push_back(static_cast<std::size_t>(p));
      w.pair_schedule.push_back(sgen.generate(w.programs.back(), rng));
    }
  }
  return w;
}

struct PhaseResult {
  double requests_per_sec = 0;
  double min_interval_rps = 0;   // slowest 100ms slice: where a stall would show
  double p99_latency_ms = 0;
  std::uint64_t swaps = 0;
  std::uint64_t errors = 0;
};

// Runs closed-loop clients for `seconds`; when swap_every > 0 the main
// thread alternates the service between the two models at that cadence.
PhaseResult run_phase(serve::PredictionService& service, const Workload& workload,
                      std::shared_ptr<model::SpeedupPredictor> a,
                      std::shared_ptr<model::SpeedupPredictor> b, double seconds,
                      int num_clients, std::chrono::milliseconds swap_every) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::size_t> cursor{0};

  const serve::ServeStats before = service.stats();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&] {
      std::vector<std::future<serve::Prediction>> inflight;
      inflight.reserve(64);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t pair = cursor.fetch_add(1) % workload.size();
        inflight.push_back(service.submit(workload.programs[workload.pair_program[pair]],
                                          workload.pair_schedule[pair]));
        if (inflight.size() >= 64) {
          service.flush();
          for (auto& f : inflight) {
            try {
              f.get();
              ++completed;
            } catch (...) {
              ++errors;
            }
          }
          inflight.clear();
        }
      }
      service.flush();
      for (auto& f : inflight) {
        try {
          f.get();
          ++completed;
        } catch (...) {
          ++errors;
        }
      }
    });
  }

  // Sample completed-count per 100ms slice; swap on schedule in between.
  PhaseResult r;
  std::vector<double> slice_rps;
  const auto t0 = std::chrono::steady_clock::now();
  auto next_swap = t0 + swap_every;
  auto slice_start = t0;
  std::uint64_t slice_base = 0;
  bool use_b = true;
  while (true) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const auto now = std::chrono::steady_clock::now();
    if (swap_every.count() > 0 && now >= next_swap) {
      service.swap_model(use_b ? b : a, use_b ? 2 : 1);
      use_b = !use_b;
      ++r.swaps;
      next_swap = now + swap_every;
    }
    if (now - slice_start >= std::chrono::milliseconds(100)) {
      const std::uint64_t done = completed.load(std::memory_order_relaxed);
      slice_rps.push_back(static_cast<double>(done - slice_base) /
                          std::chrono::duration<double>(now - slice_start).count());
      slice_base = done;
      slice_start = now;
    }
    if (std::chrono::duration<double>(now - t0).count() >= seconds) break;
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  r.requests_per_sec = static_cast<double>(completed.load()) / elapsed;
  // The first slice is warm-up-ish; still count it — a swap stall anywhere
  // must show. Guard against empty (sub-100ms runs).
  r.min_interval_rps = slice_rps.empty() ? r.requests_per_sec
                                         : *std::min_element(slice_rps.begin(), slice_rps.end());
  const serve::ServeStats after = service.stats();
  r.p99_latency_ms = 1e3 * after.p99_latency;
  r.errors = errors.load() + (after.failed_requests - before.failed_requests);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 3.0;
  int num_clients = 4;
  int swap_ms = 50;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seconds" && i + 1 < argc) seconds = std::atof(argv[++i]);
    else if (arg == "--clients" && i + 1 < argc) num_clients = std::atoi(argv[++i]);
    else if (arg == "--swap-ms" && i + 1 < argc) swap_ms = std::atoi(argv[++i]);
    else if (arg == "--csv" && i + 1 < argc) csv_path = argv[++i];
  }

  Rng rng_a(7), rng_b(8);
  auto a = std::make_shared<model::CostModel>(model::ModelConfig::fast(), rng_a);
  auto b = std::make_shared<model::CostModel>(model::ModelConfig::fast(), rng_b);
  const Workload workload = make_workload(/*num_programs=*/6, /*schedules_per_program=*/16);

  serve::ServeOptions options;
  options.num_threads = 2;
  options.max_batch = 64;
  options.max_queue_latency = std::chrono::microseconds(500);
  options.features = model::FeatureConfig::fast();
  serve::PredictionService service(a, /*version=*/1, options);

  std::cout << "hot-swap bench: " << seconds << " s/phase, " << num_clients
            << " clients, swap every " << swap_ms << " ms in the swap phase\n\n";

  // Warm-up, then steady state (no swaps), then sustained swapping.
  run_phase(service, workload, a, b, /*seconds=*/0.5, num_clients, std::chrono::milliseconds(0));
  const PhaseResult steady =
      run_phase(service, workload, a, b, seconds, num_clients, std::chrono::milliseconds(0));
  const PhaseResult swapping =
      run_phase(service, workload, a, b, seconds, num_clients,
                std::chrono::milliseconds(swap_ms));

  Table table({"phase", "req/s", "min 100ms-slice req/s", "p99 ms", "swaps", "errors"});
  const auto add = [&](const char* name, const PhaseResult& r) {
    table.add_row({name, Table::fmt(r.requests_per_sec, 0), Table::fmt(r.min_interval_rps, 0),
                   Table::fmt(r.p99_latency_ms, 2), std::to_string(r.swaps),
                   std::to_string(r.errors)});
  };
  add("steady", steady);
  add("swapping", swapping);
  std::cout << table.to_string() << "\n";
  std::cout << "throughput under sustained swapping: "
            << Table::fmt(100.0 * swapping.requests_per_sec /
                              std::max(1e-9, steady.requests_per_sec),
                          1)
            << "% of steady state (" << swapping.swaps << " swaps)\n";
  if (!csv_path.empty()) table.write_csv(csv_path);
  return (steady.errors + swapping.errors) == 0 ? 0 : 1;
}
