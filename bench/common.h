// Shared infrastructure for the paper-reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper. They share
// one dataset and one trained cost model, cached under artifacts/ next to the
// working directory so the whole bench suite trains once. Flags:
//   --paper   larger dataset / longer training (hours; default is minutes)
//   --fresh   ignore cached artifacts and rebuild them
#pragma once

#include <memory>
#include <string>

#include "baselines/halide_data.h"
#include "baselines/halide_model.h"
#include "datagen/dataset_builder.h"
#include "model/cost_model.h"
#include "model/train.h"
#include "support/table.h"

namespace tcm::bench {

struct BenchEnv {
  bool paper_scale = false;
  bool fresh = false;
  std::string artifacts_dir = "artifacts";

  static BenchEnv from_args(int argc, char** argv);

  // --- configuration ---------------------------------------------------------
  datagen::DatasetBuildOptions dataset_options() const;
  model::ModelConfig model_config() const;
  model::TrainOptions train_options() const;
  std::string tag() const { return paper_scale ? "paper" : "fast"; }

  // --- cached artifacts -------------------------------------------------------
  // Dataset of random programs (built or loaded from cache).
  const model::Dataset& dataset();
  // 60/20/20 split by program, as in the paper.
  const model::DatasetSplit& split();
  // The paper's model, trained on the split's training set.
  model::CostModel& cost_model();
  // The two ablation architectures (Section 4.4), trained identically.
  model::LstmOnlyModel& lstm_only_model();
  model::FeedForwardModel& feedforward_model();
  // The Halide-style baseline, trained on its biased distribution.
  baselines::HalideCostModel& halide_model();

  // Writes the table to stdout and mirrors it to artifacts/<name>.csv.
  void emit(const std::string& name, const Table& table) const;

 private:
  void train_predictor(model::SpeedupPredictor& predictor, const std::string& cache_name,
                       double epochs_factor);

  std::unique_ptr<model::Dataset> dataset_;
  std::unique_ptr<model::DatasetSplit> split_;
  std::unique_ptr<model::CostModel> cost_model_;
  std::unique_ptr<model::LstmOnlyModel> lstm_only_;
  std::unique_ptr<model::FeedForwardModel> feedforward_;
  std::unique_ptr<baselines::HalideCostModel> halide_;
};

}  // namespace tcm::bench
