// Figure 8: measured vs predicted speedup scatter for 16 random test
// programs (one mini-panel per program; the closer points are to the
// diagonal, the better). The CSV holds every (measured, predicted) pair.
#include "common.h"
#include "model/train.h"
#include "support/rng.h"

#include <cstdio>
#include <map>

using namespace tcm;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::BenchEnv::from_args(argc, argv);
  model::CostModel& m = env.cost_model();
  const model::Dataset& test = env.split().test;
  const auto preds = model::predict(m, test);

  std::map<int, std::vector<std::size_t>> by_program;
  for (std::size_t i = 0; i < test.size(); ++i)
    by_program[test.points[i].program_id].push_back(i);

  // Pick 16 programs deterministically.
  std::vector<int> ids;
  for (const auto& [pid, idx] : by_program)
    if (idx.size() >= 6) ids.push_back(pid);
  Rng rng(2021);
  rng.shuffle(ids);
  if (ids.size() > 16) ids.resize(16);

  Table scatter({"panel", "program", "measured", "predicted"});
  Table summary({"panel", "program", "points", "within 2x of diagonal"});
  for (std::size_t panel = 0; panel < ids.size(); ++panel) {
    const auto& idx = by_program[ids[panel]];
    int close = 0;
    for (std::size_t i : idx) {
      scatter.add_row({std::to_string(panel), std::to_string(ids[panel]),
                       Table::fmt(test.points[i].speedup, 4), Table::fmt(preds[i], 4)});
      const double ratio = preds[i] / test.points[i].speedup;
      close += ratio > 0.5 && ratio < 2.0;
    }
    summary.add_row({std::to_string(panel), std::to_string(ids[panel]),
                     std::to_string(idx.size()),
                     Table::fmt(100.0 * close / static_cast<double>(idx.size()), 0) + " %"});
  }
  scatter.write_csv("artifacts/fig8_scatter_" + env.tag() + ".csv");
  env.emit("fig8_scatter_summary", summary);
  std::printf("full scatter: artifacts/fig8_scatter_%s.csv (%zu points)\n", env.tag().c_str(),
              scatter.num_rows());
  return 0;
}
