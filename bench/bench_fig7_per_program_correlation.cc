// Figure 7: Pearson and Spearman correlation between predicted and measured
// speedups, computed *per program* over that program's schedules (the paper
// uses 100 test programs x 32 schedules; most columns are close to 1).
#include "common.h"
#include "model/train.h"
#include "support/stats.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace tcm;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::BenchEnv::from_args(argc, argv);
  model::CostModel& m = env.cost_model();
  const model::Dataset& test = env.split().test;
  const auto preds = model::predict(m, test);

  std::map<int, std::vector<std::size_t>> by_program;
  for (std::size_t i = 0; i < test.size(); ++i)
    by_program[test.points[i].program_id].push_back(i);

  std::vector<double> pearsons, spearmans;
  for (const auto& [pid, idx] : by_program) {
    if (idx.size() < 6) continue;  // need enough schedules per column
    std::vector<double> y, yhat;
    for (std::size_t i : idx) {
      y.push_back(test.points[i].speedup);
      yhat.push_back(preds[i]);
    }
    pearsons.push_back(pearson(y, yhat));
    spearmans.push_back(spearman(y, yhat));
  }
  std::sort(pearsons.begin(), pearsons.end());
  std::sort(spearmans.begin(), spearmans.end());

  auto pct = [](const std::vector<double>& v, double q) {
    if (v.empty()) return 0.0;
    return v[std::min(v.size() - 1, static_cast<std::size_t>(q * v.size()))];
  };
  Table table({"statistic", "Pearson", "Spearman"});
  table.add_row({"programs", std::to_string(pearsons.size()), std::to_string(spearmans.size())});
  table.add_row({"p10", Table::fmt(pct(pearsons, 0.1), 3), Table::fmt(pct(spearmans, 0.1), 3)});
  table.add_row({"median", Table::fmt(pct(pearsons, 0.5), 3), Table::fmt(pct(spearmans, 0.5), 3)});
  table.add_row({"p90", Table::fmt(pct(pearsons, 0.9), 3), Table::fmt(pct(spearmans, 0.9), 3)});
  table.add_row({"mean", Table::fmt(mean(pearsons), 3), Table::fmt(mean(spearmans), 3)});
  double frac_p = 0, frac_s = 0;
  for (double v : pearsons) frac_p += v > 0.75;
  for (double v : spearmans) frac_s += v > 0.75;
  table.add_row({"fraction > 0.75", Table::fmt(frac_p / pearsons.size(), 2),
                 Table::fmt(frac_s / spearmans.size(), 2)});
  env.emit("fig7_per_program_correlation", table);

  // Full per-program columns to CSV (the actual Figure 7 bars).
  Table columns({"program", "pearson", "spearman"});
  std::size_t col = 0;
  for (const auto& [pid, idx] : by_program) {
    if (idx.size() < 6) continue;
    std::vector<double> y, yhat;
    for (std::size_t i : idx) {
      y.push_back(test.points[i].speedup);
      yhat.push_back(preds[i]);
    }
    columns.add_row({std::to_string(col++), Table::fmt(pearson(y, yhat), 4),
                     Table::fmt(spearman(y, yhat), 4)});
  }
  columns.write_csv("artifacts/fig7_columns_" + env.tag() + ".csv");
  std::printf("per-program columns: artifacts/fig7_columns_%s.csv (%zu programs)\n",
              env.tag().c_str(), columns.num_rows());
  return 0;
}
