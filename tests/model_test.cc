#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "datagen/dataset_builder.h"
#include "ir/builder.h"
#include "model/cost_model.h"
#include "model/dataset.h"
#include "model/featurize.h"
#include "model/train.h"
#include "nn/serialize.h"

namespace tcm::model {
namespace {

using ir::ProgramBuilder;
using ir::Var;

ir::Program simple2d(std::int64_t ni = 8, std::int64_t nj = 16) {
  ProgramBuilder b("p");
  Var i = b.var("i", ni), j = b.var("j", nj);
  const int in = b.input("in", {ni, nj});
  b.computation("c", {i, j}, {i, j}, b.load(in, {i, j}) * 2.0);
  return b.build();
}

ir::Program producer_consumer() {
  ProgramBuilder b("pc");
  Var i = b.var("i", 8), j = b.var("j", 8);
  const int in = b.input("in", {8, 8});
  const int prod = b.computation("prod", {i, j}, {i, j}, b.load(in, {i, j}) * 2.0);
  Var i2 = b.var("i2", 8), j2 = b.var("j2", 8);
  b.computation("cons", {i2, j2}, {i2, j2}, b.load(b.buffer_of(prod), {i2, j2}) + 1.0);
  return b.build();
}

// ---------------------------------------------------------------------------
// FeatureConfig / featurize
// ---------------------------------------------------------------------------

TEST(FeatureConfig, SizesAreConsistent) {
  const FeatureConfig fast = FeatureConfig::fast();
  EXPECT_EQ(fast.computation_vector_size(),
            FeatureConfig::kPerLoop * fast.max_depth + 1 + fast.max_rank +
                fast.max_accesses * fast.per_access() + 4 + FeatureConfig::kUnimodCoeffs);
  const FeatureConfig paper = FeatureConfig::paper();
  EXPECT_EQ(paper.max_depth, 7);
  EXPECT_EQ(paper.max_accesses, 21);
  EXPECT_GT(paper.computation_vector_size(), fast.computation_vector_size());
}

TEST(Featurize, VectorHasConfiguredSize) {
  const ir::Program p = simple2d();
  const auto f = featurize(p, {}, FeatureConfig::fast());
  ASSERT_TRUE(f.has_value());
  ASSERT_EQ(f->comp_vectors.size(), 1u);
  EXPECT_EQ(static_cast<int>(f->comp_vectors[0].size()),
            FeatureConfig::fast().computation_vector_size());
}

TEST(Featurize, ExtentsAreLogTransformed) {
  const ir::Program p = simple2d(8, 16);
  const auto f = featurize(p, {}, FeatureConfig::fast());
  ASSERT_TRUE(f.has_value());
  EXPECT_NEAR(f->comp_vectors[0][0], std::log1p(8.0), 1e-5);  // level-0 extent
  EXPECT_NEAR(f->comp_vectors[0][FeatureConfig::kPerLoop], std::log1p(16.0), 1e-5);
}

TEST(Featurize, LogTransformCanBeDisabled) {
  FeatureConfig cfg = FeatureConfig::fast();
  cfg.log_transform = false;
  const ir::Program p = simple2d(8, 16);
  const auto f = featurize(p, {}, cfg);
  ASSERT_TRUE(f.has_value());
  EXPECT_FLOAT_EQ(f->comp_vectors[0][0], 8.0f);
}

TEST(Featurize, TagsAppearAtTheRightLevels) {
  const ir::Program p = simple2d();
  transforms::Schedule s;
  s.interchanges.push_back({0, 0, 1});
  s.tiles.push_back({0, 0, {4, 4}});
  s.unrolls.push_back({0, 2});
  s.parallels.push_back({0, 0});
  s.vectorizes.push_back({0, 4});
  const auto f0 = featurize(p, {}, FeatureConfig::fast());
  const auto f1 = featurize(p, s, FeatureConfig::fast());
  ASSERT_TRUE(f0 && f1);
  const auto& v0 = f0->comp_vectors[0];
  const auto& v1 = f1->comp_vectors[0];
  const int per = FeatureConfig::kPerLoop;
  // Layout per level: [ub, lb, red, fused, inter, tiled, tfac, unr, ufac,
  //                    par, vec, vwidth]
  EXPECT_EQ(v1[4], 1.0f);                      // interchange on level 0
  EXPECT_EQ(v1[per + 4], 1.0f);                // and level 1
  EXPECT_EQ(v1[5], 1.0f);                      // tiled level 0
  EXPECT_NEAR(v1[6], std::log1p(4.0), 1e-5);   // tile factor
  EXPECT_EQ(v1[per + 7], 1.0f);                // unroll innermost
  EXPECT_EQ(v1[9], 1.0f);                      // parallel level 0
  EXPECT_EQ(v1[per + 10], 1.0f);               // vectorize innermost
  // The identity schedule has no tags set.
  EXPECT_EQ(v0[4], 0.0f);
  EXPECT_EQ(v0[5], 0.0f);
  EXPECT_EQ(v0[per + 7], 0.0f);
  // Extents identical: tags only.
  EXPECT_EQ(v0[0], v1[0]);
}

TEST(Featurize, ReductionTagSet) {
  ProgramBuilder b("r");
  Var i = b.var("i", 4), k = b.var("k", 8);
  const int in = b.input("in", {4, 8});
  b.computation("dot", {i, k}, {i}, b.load(in, {i, k}));
  const ir::Program p = b.build();
  const auto f = featurize(p, {}, FeatureConfig::fast());
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->comp_vectors[0][2], 0.0f);                          // level 0: not reduction
  EXPECT_EQ(f->comp_vectors[0][FeatureConfig::kPerLoop + 2], 1.0f);  // level 1: reduction
}

TEST(Featurize, FusionChangesTreeStructure) {
  const ir::Program p = producer_consumer();
  const auto unfused = featurize(p, {}, FeatureConfig::fast());
  transforms::Schedule s;
  s.fusions.push_back({0, 1, 2});
  const auto fused = featurize(p, s, FeatureConfig::fast());
  ASSERT_TRUE(unfused && fused);
  EXPECT_EQ(unfused->root.children.size(), 2u);
  EXPECT_EQ(fused->root.children.size(), 1u);
  EXPECT_FALSE(unfused->same_structure(*fused));
  // Fusion tag visible on the fused levels of both computations.
  EXPECT_EQ(fused->comp_vectors[0][3], 1.0f);
  EXPECT_EQ(fused->comp_vectors[1][3], 1.0f);
}

TEST(Featurize, PaddingIsZeroBeyondRealAccesses) {
  const ir::Program p = simple2d();
  const FeatureConfig cfg = FeatureConfig::fast();
  const auto f = featurize(p, {}, cfg);
  ASSERT_TRUE(f.has_value());
  // One real access; access slots 1.. are fully zero (present flag included).
  const int base = FeatureConfig::kPerLoop * cfg.max_depth + 1 + cfg.max_rank;
  const int slot = cfg.per_access();
  for (int a = 1; a < cfg.max_accesses; ++a)
    for (int k = 0; k < slot; ++k)
      EXPECT_EQ(f->comp_vectors[0][static_cast<std::size_t>(base + a * slot + k)], 0.0f)
          << "access " << a << " offset " << k;
  // Slot 0 has the present flag set.
  EXPECT_EQ(f->comp_vectors[0][static_cast<std::size_t>(base)], 1.0f);
}

TEST(Featurize, RejectsTooDeepPrograms) {
  FeatureConfig cfg = FeatureConfig::fast();
  cfg.max_depth = 1;
  std::string error;
  const auto f = featurize(simple2d(), {}, cfg, &error);
  EXPECT_FALSE(f.has_value());
  EXPECT_NE(error.find("max_depth"), std::string::npos);
}

TEST(Featurize, RejectsIllegalFusion) {
  const ir::Program p = producer_consumer();
  transforms::Schedule s;
  s.fusions.push_back({0, 1, 5});  // deeper than the nests
  std::string error;
  EXPECT_FALSE(featurize(p, s, FeatureConfig::fast(), &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Featurize, TreeNodeCount) {
  const auto f = featurize(producer_consumer(), {}, FeatureConfig::fast());
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->root.node_count(), 1 + 4);  // virtual root + 2 nests x 2 loops
}

// ---------------------------------------------------------------------------
// Dataset & batching
// ---------------------------------------------------------------------------

Dataset tiny_dataset(int programs = 6, int schedules = 6) {
  datagen::DatasetBuildOptions opt;
  opt.num_programs = programs;
  opt.schedules_per_program = schedules;
  opt.features = FeatureConfig::fast();
  opt.generator = datagen::GeneratorOptions::tiny();
  return datagen::build_dataset(opt);
}

TEST(Dataset, SaveLoadRoundTrip) {
  const Dataset ds = tiny_dataset(3, 4);
  ASSERT_GT(ds.size(), 0u);
  const std::string path = testing::TempDir() + "/tcm_dataset_test.bin";
  ASSERT_TRUE(ds.save(path));
  const Dataset loaded = Dataset::load(path);
  ASSERT_EQ(loaded.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(loaded.points[i].program_id, ds.points[i].program_id);
    EXPECT_DOUBLE_EQ(loaded.points[i].speedup, ds.points[i].speedup);
    EXPECT_EQ(loaded.points[i].feats.comp_vectors, ds.points[i].feats.comp_vectors);
    EXPECT_TRUE(loaded.points[i].feats.root == ds.points[i].feats.root);
  }
}

TEST(Dataset, LoadMissingFileThrows) {
  EXPECT_THROW(Dataset::load("/nonexistent/ds.bin"), std::runtime_error);
}

TEST(Dataset, SplitByProgramIsDisjointAndComplete) {
  const Dataset ds = tiny_dataset(10, 4);
  const DatasetSplit split = split_by_program(ds, 0.6, 0.2, 42);
  EXPECT_EQ(split.train.size() + split.validation.size() + split.test.size(), ds.size());
  auto programs_of = [](const Dataset& d) {
    std::set<int> s;
    for (const auto& p : d.points) s.insert(p.program_id);
    return s;
  };
  const auto tr = programs_of(split.train);
  const auto te = programs_of(split.test);
  for (int pid : te) EXPECT_EQ(tr.count(pid), 0u);
}

TEST(Dataset, BatchesShareStructureAndAlignTargets) {
  const Dataset ds = tiny_dataset(4, 8);
  const auto batches = make_batches(ds, 4);
  std::size_t total = 0;
  for (const Batch& b : batches) {
    ASSERT_NE(b.tree, nullptr);
    EXPECT_LE(b.batch_size(), 4);
    EXPECT_EQ(b.point_indices.size(), static_cast<std::size_t>(b.batch_size()));
    for (int r = 0; r < b.batch_size(); ++r) {
      const DataPoint& p = ds.points[b.point_indices[static_cast<std::size_t>(r)]];
      EXPECT_FLOAT_EQ(b.targets.at(r, 0), static_cast<float>(p.speedup));
      EXPECT_TRUE(p.feats.root == *b.tree);
    }
    total += static_cast<std::size_t>(b.batch_size());
  }
  EXPECT_EQ(total, ds.size());
}

TEST(Dataset, BatchSizeMustBePositive) {
  const Dataset ds = tiny_dataset(2, 2);
  EXPECT_THROW(make_batches(ds, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Models
// ---------------------------------------------------------------------------

TEST(CostModelTest, ForwardShapesAndPositivity) {
  const Dataset ds = tiny_dataset(3, 6);
  const auto batches = make_batches(ds, 4);
  Rng rng(1);
  CostModel model(ModelConfig::fast(), rng);
  Rng frng(2);
  for (const Batch& b : batches) {
    const nn::Variable pred = model.forward_batch(b, false, frng);
    EXPECT_EQ(pred.rows(), b.batch_size());
    EXPECT_EQ(pred.cols(), 1);
    for (int r = 0; r < pred.rows(); ++r) EXPECT_GT(pred.value().at(r, 0), 0.0f);
  }
}

TEST(CostModelTest, BatchedEqualsSingleSample) {
  const Dataset ds = tiny_dataset(2, 6);
  Rng rng(1);
  CostModel model(ModelConfig::fast(), rng);
  const auto big = make_batches(ds, 64);
  const auto single = make_batches(ds, 1);
  std::vector<double> pb(ds.size()), ps(ds.size());
  Rng r0(0);
  for (const Batch& b : big) {
    const auto pred = model.forward_batch(b, false, r0);
    for (int r = 0; r < pred.rows(); ++r)
      pb[b.point_indices[static_cast<std::size_t>(r)]] = pred.value().at(r, 0);
  }
  for (const Batch& b : single) {
    const auto pred = model.forward_batch(b, false, r0);
    ps[b.point_indices[0]] = pred.value().at(0, 0);
  }
  for (std::size_t i = 0; i < ds.size(); ++i) EXPECT_NEAR(pb[i], ps[i], 1e-4);
}

TEST(CostModelTest, AblationModelsProducePredictions) {
  const Dataset ds = tiny_dataset(2, 4);
  const auto batches = make_batches(ds, 4);
  Rng rng(1);
  LstmOnlyModel lstm(ModelConfig::fast(), rng);
  FeedForwardModel ff(ModelConfig::fast(), rng);
  Rng r0(0);
  for (const Batch& b : batches) {
    EXPECT_EQ(lstm.forward_batch(b, false, r0).rows(), b.batch_size());
    if (b.num_comps() <= 4) EXPECT_EQ(ff.forward_batch(b, false, r0).rows(), b.batch_size());
  }
}

TEST(CostModelTest, FeedForwardRejectsTooManyComputations) {
  const Dataset ds = tiny_dataset(6, 4);
  Rng rng(1);
  ModelConfig cfg = ModelConfig::fast();
  cfg.ff_max_comps = 1;
  FeedForwardModel ff(cfg, rng);
  Rng r0(0);
  bool found_multi = false;
  for (const Batch& b : make_batches(ds, 4)) {
    if (b.num_comps() > 1) {
      found_multi = true;
      EXPECT_THROW(ff.forward_batch(b, false, r0), std::invalid_argument);
    }
  }
  EXPECT_TRUE(found_multi);
}

TEST(CostModelTest, SerializationRoundTrip) {
  Rng rng(1);
  CostModel a(ModelConfig::fast(), rng);
  const std::string path = testing::TempDir() + "/tcm_cost_model.bin";
  ASSERT_TRUE(nn::save_parameters(a, path));
  Rng rng2(55);
  CostModel b(ModelConfig::fast(), rng2);
  ASSERT_TRUE(nn::load_parameters(b, path));
  const Dataset ds = tiny_dataset(1, 3);
  const auto batches = make_batches(ds, 4);
  Rng r0(0);
  const auto pa = a.forward_batch(batches[0], false, r0);
  const auto pb2 = b.forward_batch(batches[0], false, r0);
  for (int r = 0; r < pa.rows(); ++r)
    EXPECT_FLOAT_EQ(pa.value().at(r, 0), pb2.value().at(r, 0));
}

TEST(Training, LossDecreasesAndMetricsImprove) {
  const Dataset ds = tiny_dataset(8, 12);
  Rng rng(3);
  CostModel model(ModelConfig::fast(), rng);
  const EvalMetrics before = evaluate(model, ds);
  TrainOptions topt;
  topt.epochs = 30;
  topt.max_lr = 2e-3;
  const TrainResult result = train_model(model, ds, nullptr, topt);
  ASSERT_EQ(result.train_loss.size(), 30u);
  EXPECT_LT(result.train_loss.back(), result.train_loss.front());
  const EvalMetrics after = evaluate(model, ds);
  EXPECT_LT(after.mape, before.mape);
  EXPECT_GT(after.spearman, 0.3);
}

TEST(Training, PredictionOrderMatchesDataset) {
  const Dataset ds = tiny_dataset(3, 4);
  Rng rng(3);
  CostModel model(ModelConfig::fast(), rng);
  const auto preds = predict(model, ds);
  EXPECT_EQ(preds.size(), ds.size());
  for (double p : preds) EXPECT_GT(p, 0.0);
}

TEST(Training, ComputeMetricsValidatesSizes) {
  const Dataset ds = tiny_dataset(1, 2);
  EXPECT_THROW(compute_metrics({1.0}, ds), std::invalid_argument);
}

TEST(Training, EmptyTrainingSetRejected) {
  Rng rng(1);
  CostModel model(ModelConfig::fast(), rng);
  Dataset empty;
  EXPECT_THROW(train_model(model, empty, nullptr, {}), std::invalid_argument);
}

}  // namespace
}  // namespace tcm::model
