// Tests for the async autoscheduling job service (src/jobs/): the
// SearchJobManager lifecycle (submit / poll / stream / cancel), cooperative
// cancellation and deadline shedding, admission control on the job queue,
// the persistent ScheduleMemory (exact hit, shape warm start, durability,
// corrupt-file recovery), and the api::Service façade integration including
// schedule reuse across a full service restart.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "benchsuite/benchmarks.h"
#include "datagen/generator.h"
#include "jobs/job_manager.h"
#include "jobs/schedule_memory.h"
#include "model/cost_model.h"
#include "registry/model_registry.h"
#include "search/beam_search.h"
#include "serve/errors.h"
#include "serve/fingerprint.h"
#include "serve/prediction_service.h"
#include "transforms/apply.h"

namespace fs = std::filesystem;

namespace tcm::jobs {
namespace {

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("tcm_jobs_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// mvt: two independent nests — a multi-root program (the acceptance case).
ir::Program multi_root_program() { return benchsuite::make_mvt(96); }

// A deeper program whose beam search spends long enough for a cancel or a
// tight deadline to land mid-flight.
ir::Program slow_program() { return benchsuite::make_conv_relu(2, 3, 48, 48, 2, 3); }

serve::ServeOptions serve_options(int threads = 2) {
  serve::ServeOptions options;
  options.num_threads = threads;
  options.features = model::FeatureConfig::fast();
  options.max_queue_latency = std::chrono::microseconds(200);
  return options;
}

SearchJobInfo wait_terminal(SearchJobManager& manager, const std::string& id,
                            std::chrono::seconds timeout = std::chrono::seconds(120)) {
  const auto give_up = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    std::optional<SearchJobInfo> info = manager.info(id);
    EXPECT_TRUE(info.has_value()) << "job " << id << " vanished";
    if (!info) return {};
    if (info->state == JobState::kDone || info->state == JobState::kFailed ||
        info->state == JobState::kCancelled)
      return *info;
    if (std::chrono::steady_clock::now() > give_up) {
      ADD_FAILURE() << "job " << id << " did not reach a terminal state";
      return *info;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// ---------------------------------------------------------------------------
// ScheduleMemory
// ---------------------------------------------------------------------------

MemoryEntry make_entry(std::uint64_t program_fp, std::uint64_t shape_fp, double speedup) {
  MemoryEntry e;
  e.program_fp = program_fp;
  e.shape_fp = shape_fp;
  e.predicted_speedup = speedup;
  e.evaluations = 10;
  e.method = "beam";
  e.schedule.parallels.push_back({0, 0});
  return e;
}

TEST(ScheduleMemory, ExactHitShapeHitAndMissAccounting) {
  ScheduleMemory memory("");  // in-memory only
  EXPECT_FALSE(memory.lookup(1).has_value());
  memory.store(make_entry(1, 100, 2.0));
  memory.store(make_entry(2, 100, 3.0));
  ASSERT_TRUE(memory.lookup(1).has_value());
  EXPECT_DOUBLE_EQ(memory.lookup(1)->predicted_speedup, 2.0);

  // Warm starts: same shape, excluding the asking program itself, best first.
  const auto seeds = memory.warm_starts(100, /*exclude_program_fp=*/1);
  ASSERT_EQ(seeds.size(), 1u);
  const auto stats = memory.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.exact_hits, 2u);
  EXPECT_EQ(stats.shape_hits, 1u);
  EXPECT_EQ(stats.stores, 2u);
}

TEST(ScheduleMemory, UpsertKeepsTheBetterSchedule) {
  ScheduleMemory memory("");
  memory.store(make_entry(7, 70, 3.0));
  memory.store(make_entry(7, 70, 1.5));  // worse: ignored
  EXPECT_DOUBLE_EQ(memory.lookup(7)->predicted_speedup, 3.0);
  memory.store(make_entry(7, 70, 4.0));  // better: replaces
  EXPECT_DOUBLE_EQ(memory.lookup(7)->predicted_speedup, 4.0);
  EXPECT_EQ(memory.size(), 1u);
}

TEST(ScheduleMemory, PersistsAcrossReopen) {
  const std::string path = scratch_dir("memory_reopen") + "/memory.json";
  {
    ScheduleMemory memory(path);
    MemoryEntry e = make_entry(42, 420, 2.5);
    e.schedule.tiles.push_back({0, 0, {32, 32}});
    memory.store(e);
  }
  ScheduleMemory reopened(path);
  ASSERT_EQ(reopened.size(), 1u);
  std::optional<MemoryEntry> hit = reopened.lookup(42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->shape_fp, 420u);
  EXPECT_DOUBLE_EQ(hit->predicted_speedup, 2.5);
  EXPECT_EQ(hit->method, "beam");
  ASSERT_EQ(hit->schedule.tiles.size(), 1u);
  EXPECT_EQ(hit->schedule.tiles[0].sizes, (std::vector<std::int64_t>{32, 32}));
}

TEST(ScheduleMemory, CorruptFileIsDiscardedNotFatal) {
  const std::string path = scratch_dir("memory_corrupt") + "/memory.json";
  { std::ofstream(path) << "{\"format\":\"tcm-schedule-memory\",\"entries\":[trunca"; }
  ScheduleMemory memory(path);
  EXPECT_EQ(memory.size(), 0u);
  memory.store(make_entry(1, 10, 2.0));  // and it keeps working
  EXPECT_EQ(ScheduleMemory(path).size(), 1u);
}

TEST(ShapeFingerprint, SameLoopNestDifferentArithmeticCollides) {
  ir::Program a = multi_root_program();
  ir::Program b = multi_root_program();
  ASSERT_FALSE(a.comps.empty());
  // Different arithmetic, same loop tree: exact fingerprints diverge, shape
  // fingerprints must not.
  b.comps[0].rhs = ir::Expr::add(b.comps[0].rhs, ir::Expr::constant(1.0));
  EXPECT_NE(serve::fingerprint(a), serve::fingerprint(b));
  EXPECT_EQ(serve::shape_fingerprint(a), serve::shape_fingerprint(b));
}

// ---------------------------------------------------------------------------
// SearchJobManager lifecycle
// ---------------------------------------------------------------------------

TEST(SearchJobManager, BeamJobRunsToDoneAndBeatsBaseline) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::PredictionService service(cost_model, serve_options());
  SearchJobManagerOptions options;
  options.workers = 1;
  SearchJobManager manager(service, options);

  SearchJobRequest request;
  request.program = multi_root_program();
  request.beam_width = 2;
  const std::string id = manager.submit(request);
  EXPECT_EQ(id.rfind("sj-", 0), 0u);

  const SearchJobInfo info = wait_terminal(manager, id);
  EXPECT_EQ(info.state, JobState::kDone) << info.error;
  EXPECT_FALSE(info.reused);
  EXPECT_DOUBLE_EQ(info.progress, 1.0);
  EXPECT_GT(info.evaluations, 0);
  // Acceptance criterion: never worse than the untransformed program.
  EXPECT_GE(info.best_speedup, info.baseline_speedup);
  EXPECT_TRUE(transforms::is_legal(request.program, info.best_schedule));

  const SearchJobStats stats = manager.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.done, 1u);
  EXPECT_EQ(stats.memory.stores, 1u);
}

TEST(SearchJobManager, IdenticalResubmitIsServedFromMemory) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::PredictionService service(cost_model, serve_options());
  SearchJobManager manager(service, {});

  SearchJobRequest request;
  request.program = multi_root_program();
  const std::string first = manager.submit(request);
  const SearchJobInfo first_info = wait_terminal(manager, first);
  ASSERT_EQ(first_info.state, JobState::kDone) << first_info.error;

  // Same program again: born DONE, no search, same schedule.
  const std::string second = manager.submit(request);
  std::optional<SearchJobInfo> second_info = manager.info(second);
  ASSERT_TRUE(second_info.has_value());
  EXPECT_EQ(second_info->state, JobState::kDone);
  EXPECT_TRUE(second_info->reused);
  EXPECT_EQ(second_info->evaluations, 0);
  EXPECT_DOUBLE_EQ(second_info->best_speedup, first_info.best_speedup);
  EXPECT_EQ(second_info->best_schedule.to_string(), first_info.best_schedule.to_string());
  EXPECT_EQ(manager.stats().reused, 1u);
}

TEST(SearchJobManager, SameShapedProgramWarmStartsTheBeam) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::PredictionService service(cost_model, serve_options());
  SearchJobManager manager(service, {});

  SearchJobRequest request;
  request.program = multi_root_program();
  const std::string cold = manager.submit(request);
  ASSERT_EQ(wait_terminal(manager, cold).state, JobState::kDone);

  // Same loop shape, different arithmetic: a near miss, not an exact hit.
  SearchJobRequest near_miss = request;
  near_miss.program.comps[0].rhs =
      ir::Expr::add(near_miss.program.comps[0].rhs, ir::Expr::constant(1.0));
  const std::string warm = manager.submit(near_miss);
  const SearchJobInfo info = wait_terminal(manager, warm);
  EXPECT_EQ(info.state, JobState::kDone) << info.error;
  EXPECT_FALSE(info.reused);       // it did search
  EXPECT_TRUE(info.warm_started);  // but from remembered seeds
  EXPECT_GT(info.evaluations, 0);
  EXPECT_GE(manager.stats().memory.shape_hits, 1u);
}

TEST(SearchJobManager, EventStreamCarriesProgressAndEndsTerminal) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::PredictionService service(cost_model, serve_options());
  SearchJobManager manager(service, {});

  SearchJobRequest request;
  request.program = multi_root_program();
  const std::string id = manager.submit(request);

  std::vector<std::string> lines;
  std::size_t cursor = 0;
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  for (;;) {
    const SearchJobManager::EventBatch batch =
        manager.events_since(id, cursor, std::chrono::milliseconds(100));
    for (const std::string& line : batch.lines) lines.push_back(line);
    cursor += batch.lines.size();
    if (batch.done && batch.lines.empty()) break;
    ASSERT_LT(std::chrono::steady_clock::now(), give_up) << "stream never terminated";
  }
  // At least: submit snapshot, RUNNING, >=1 progress line, terminal DONE.
  ASSERT_GE(lines.size(), 3u);
  EXPECT_NE(lines.front().find("\"QUEUED\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"DONE\""), std::string::npos);
  bool saw_running = false;
  for (const std::string& line : lines)
    if (line.find("\"RUNNING\"") != std::string::npos) saw_running = true;
  EXPECT_TRUE(saw_running);

  // Unknown ids terminate immediately instead of blocking the stream.
  EXPECT_TRUE(manager.events_since("sj-999999", 0, std::chrono::milliseconds(1)).done);
}

TEST(SearchJobManager, CancelQueuedJobIsImmediate) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::PredictionService service(cost_model, serve_options());
  SearchJobManagerOptions options;
  options.workers = 1;
  SearchJobManager manager(service, options);

  SearchJobRequest request;
  request.program = slow_program();
  const std::string running = manager.submit(request);
  SearchJobRequest queued_request;
  queued_request.program = multi_root_program();
  const std::string queued = manager.submit(queued_request);

  ASSERT_TRUE(manager.cancel(queued));
  std::optional<SearchJobInfo> info = manager.info(queued);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, JobState::kCancelled);
  EXPECT_FALSE(manager.cancel("sj-999999"));
  manager.cancel(running);  // don't wait out the full search in the test
  wait_terminal(manager, running);
}

TEST(SearchJobManager, CancelMidSearchReturnsCancelledWithinOneBatch) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::PredictionService service(cost_model, serve_options());
  SearchJobManagerOptions options;
  options.workers = 1;
  SearchJobManager manager(service, options);

  SearchJobRequest request;
  request.program = slow_program();
  request.beam_width = 6;
  const std::string id = manager.submit(request);
  // Wait until the job is actually running, then cancel mid-search.
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (manager.info(id)->state == JobState::kQueued &&
         std::chrono::steady_clock::now() < give_up)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(manager.cancel(id));
  const SearchJobInfo info = wait_terminal(manager, id);
  EXPECT_EQ(info.state, JobState::kCancelled);
  EXPECT_LT(info.progress, 1.0);
}

TEST(SearchJobManager, ExpiredDeadlineFailsInsteadOfHanging) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::PredictionService service(cost_model, serve_options());
  SearchJobManager manager(service, {});

  SearchJobRequest request;
  request.program = slow_program();
  request.deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  const std::string id = manager.submit(request);
  const SearchJobInfo info = wait_terminal(manager, id);
  EXPECT_EQ(info.state, JobState::kFailed);
  EXPECT_NE(info.error.find("DEADLINE_EXCEEDED"), std::string::npos) << info.error;
}

TEST(SearchJobManager, QueueCapShedsWithAdmissionRejected) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::PredictionService service(cost_model, serve_options());
  SearchJobManagerOptions options;
  options.workers = 1;
  options.queue_cap = 1;
  SearchJobManager manager(service, options);

  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  bool rejected = false;
  std::vector<std::string> admitted;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    SearchJobRequest request;
    request.program = gen.generate(seed);
    if (request.program.comps.empty()) continue;
    try {
      admitted.push_back(manager.submit(request));
    } catch (const serve::AdmissionRejectedError&) {
      rejected = true;
      break;
    }
  }
  EXPECT_TRUE(rejected) << "queue cap never engaged";
  for (const std::string& id : admitted) manager.cancel(id);
  for (const std::string& id : admitted) wait_terminal(manager, id);
}

TEST(SearchJobManager, ConcurrentClientsAllReachDone) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::PredictionService service(cost_model, serve_options(2));
  SearchJobManagerOptions options;
  options.workers = 2;
  options.queue_cap = 0;  // no shedding in this test
  SearchJobManager manager(service, options);

  // Distinct tiny programs (identical ones would collapse into reuse).
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  std::vector<ir::Program> programs;
  for (std::uint64_t seed = 0; programs.size() < 4 && seed < 64; ++seed) {
    ir::Program p = gen.generate(seed);
    if (!p.comps.empty()) programs.push_back(std::move(p));
  }
  ASSERT_EQ(programs.size(), 4u);

  std::vector<std::string> ids(programs.size());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < programs.size(); ++i)
    clients.emplace_back([&, i] {
      SearchJobRequest request;
      request.program = programs[i];
      ids[i] = manager.submit(request);
    });
  for (std::thread& t : clients) t.join();

  for (const std::string& id : ids) {
    const SearchJobInfo info = wait_terminal(manager, id);
    EXPECT_EQ(info.state, JobState::kDone) << info.error;
    EXPECT_GE(info.best_speedup, info.baseline_speedup);
  }
  EXPECT_EQ(manager.stats().done, 4u);
  EXPECT_EQ(manager.list().size(), 4u);
}

TEST(SearchJobManager, MctsJobRunsToDone) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::PredictionService service(cost_model, serve_options());
  SearchJobManager manager(service, {});

  SearchJobRequest request;
  request.program = multi_root_program();
  request.method = SearchMethod::kMcts;
  request.mcts_iterations = 10;
  const std::string id = manager.submit(request);
  const SearchJobInfo info = wait_terminal(manager, id);
  EXPECT_EQ(info.state, JobState::kDone) << info.error;
  EXPECT_GE(info.best_speedup, info.baseline_speedup);
  EXPECT_TRUE(transforms::is_legal(request.program, info.best_schedule));
}

TEST(SearchJobManager, MemoryPersistsAcrossManagerRestart) {
  const std::string path = scratch_dir("manager_restart") + "/memory.json";
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::PredictionService service(cost_model, serve_options());

  SearchJobRequest request;
  request.program = multi_root_program();
  double first_speedup = 0;
  {
    SearchJobManagerOptions options;
    options.memory_path = path;
    SearchJobManager manager(service, options);
    const std::string id = manager.submit(request);
    const SearchJobInfo info = wait_terminal(manager, id);
    ASSERT_EQ(info.state, JobState::kDone) << info.error;
    first_speedup = info.best_speedup;
  }
  {
    SearchJobManagerOptions options;
    options.memory_path = path;
    SearchJobManager manager(service, options);  // fresh manager, same file
    const std::string id = manager.submit(request);
    std::optional<SearchJobInfo> info = manager.info(id);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->state, JobState::kDone);
    EXPECT_TRUE(info->reused);
    EXPECT_DOUBLE_EQ(info->best_speedup, first_speedup);
  }
}

// Cooperative stop at the search layer: the progress callback returning
// false must end the beam within one evaluation batch, keeping best-so-far.
TEST(BeamSearchProgress, CallbackStopsSearchDeterministically) {
  const ir::Program p = slow_program();
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::PredictionService service(cost_model, serve_options());
  search::ModelEvaluator evaluator(service);
  search::BeamSearchOptions options;
  int calls = 0;
  options.on_progress = [&](const search::SearchProgress& progress) {
    EXPECT_GT(progress.evaluations, 0);
    return ++calls < 2;  // stop after the second report
  };
  const search::SearchResult result = search::beam_search(p, evaluator, options);
  EXPECT_TRUE(result.stopped_early);
  EXPECT_EQ(calls, 2);
  EXPECT_TRUE(transforms::is_legal(p, result.best_schedule));
}

// ---------------------------------------------------------------------------
// api::Service integration
// ---------------------------------------------------------------------------

std::string make_registry(const std::string& name) {
  const std::string root = scratch_dir(name);
  registry::ModelRegistry reg(root);
  Rng rng(100);
  model::CostModel m(model::ModelConfig::fast(), rng);
  registry::ModelManifest manifest;
  manifest.config = model::ModelConfig::fast();
  manifest.provenance = "jobs_test";
  reg.register_version(m, manifest);
  reg.promote(1);
  return root;
}

api::ServiceOptions service_options(const std::string& root) {
  api::ServiceOptions opt;
  opt.registry_root = root;
  opt.serve.num_threads = 2;
  opt.serve.features = model::FeatureConfig::fast();
  opt.serve.max_queue_latency = std::chrono::microseconds(200);
  opt.search.workers = 1;
  return opt;
}

api::SearchRequest service_search_request() {
  api::SearchRequest request;
  request.program = multi_root_program();
  request.beam_width = 2;
  return request;
}

TEST(ServiceSearch, SubmitPollCancelAndStatsSurface) {
  const std::string root = make_registry("svc_lifecycle");
  auto service = api::Service::open(service_options(root));
  ASSERT_TRUE(service.ok()) << service.status().to_string();

  api::Result<SearchJobInfo> submitted = (*service)->submit_search(service_search_request());
  ASSERT_TRUE(submitted.ok()) << submitted.status().to_string();
  const std::string id = submitted->id;

  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  api::Result<SearchJobInfo> polled = (*service)->search_job(id);
  while (polled.ok() && polled->state != JobState::kDone &&
         polled->state != JobState::kFailed && polled->state != JobState::kCancelled) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    polled = (*service)->search_job(id);
  }
  ASSERT_TRUE(polled.ok()) << polled.status().to_string();
  EXPECT_EQ(polled->state, JobState::kDone) << polled->error;
  EXPECT_GE(polled->best_speedup, polled->baseline_speedup);

  // The schedule round-trips through predict and scores identically.
  api::PredictRequest check;
  check.program = service_search_request().program;
  check.schedules.push_back(polled->best_schedule);
  api::Result<api::PredictResponse> prediction = (*service)->predict(check);
  ASSERT_TRUE(prediction.ok()) << prediction.status().to_string();
  EXPECT_NEAR(prediction->predictions[0].speedup, polled->best_speedup,
              1e-9 * polled->best_speedup);

  EXPECT_EQ((*service)->search_job("sj-999999").status().code(), api::StatusCode::kNotFound);
  EXPECT_EQ((*service)->cancel_search("sj-999999").status().code(),
            api::StatusCode::kNotFound);
  // Cancelling a DONE job keeps it DONE (cancel is not un-done).
  api::Result<SearchJobInfo> cancelled = (*service)->cancel_search(id);
  ASSERT_TRUE(cancelled.ok());
  EXPECT_EQ(cancelled->state, JobState::kDone);

  const api::StatsSnapshot stats = (*service)->stats();
  EXPECT_TRUE(stats.search.enabled);
  EXPECT_EQ(stats.search.jobs.submitted, 1u);
  EXPECT_EQ(stats.search.jobs.done, 1u);
  ASSERT_TRUE((*service)->list_searches().ok());
  EXPECT_EQ((*service)->list_searches()->size(), 1u);
}

TEST(ServiceSearch, ScheduleReuseSurvivesServiceRestart) {
  const std::string root = make_registry("svc_restart");
  double first_speedup = 0;
  {
    auto service = api::Service::open(service_options(root));
    ASSERT_TRUE(service.ok()) << service.status().to_string();
    api::Result<SearchJobInfo> job = (*service)->submit_search(service_search_request());
    ASSERT_TRUE(job.ok()) << job.status().to_string();
    const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(120);
    api::Result<SearchJobInfo> polled = (*service)->search_job(job->id);
    while (polled.ok() && polled->state != JobState::kDone &&
           polled->state != JobState::kFailed) {
      ASSERT_LT(std::chrono::steady_clock::now(), give_up);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      polled = (*service)->search_job(job->id);
    }
    ASSERT_TRUE(polled.ok());
    ASSERT_EQ(polled->state, JobState::kDone) << polled->error;
    first_speedup = polled->best_speedup;
    (*service)->shutdown();
  }
  // The memory file lives under the registry root by default, so a fresh
  // service over the same root answers instantly.
  EXPECT_TRUE(fs::exists(fs::path(root) / "schedule_memory.json"));
  auto service = api::Service::open(service_options(root));
  ASSERT_TRUE(service.ok()) << service.status().to_string();
  api::Result<SearchJobInfo> job = (*service)->submit_search(service_search_request());
  ASSERT_TRUE(job.ok()) << job.status().to_string();
  EXPECT_EQ(job->state, JobState::kDone);
  EXPECT_TRUE(job->reused);
  EXPECT_DOUBLE_EQ(job->best_speedup, first_speedup);
}

TEST(ServiceSearch, DisabledSearchAnswersUnimplemented) {
  const std::string root = make_registry("svc_disabled");
  api::ServiceOptions opt = service_options(root);
  opt.enable_search = false;
  auto service = api::Service::open(std::move(opt));
  ASSERT_TRUE(service.ok()) << service.status().to_string();
  EXPECT_EQ(service.value()->submit_search(service_search_request()).status().code(),
            api::StatusCode::kUnimplemented);
  EXPECT_EQ(service.value()->search_jobs(), nullptr);
  EXPECT_FALSE(service.value()->stats().search.enabled);
}

// ---------------------------------------------------------------------------
// Wire codecs
// ---------------------------------------------------------------------------

TEST(SearchWire, RequestDecodingValidates) {
  const ir::Program p = multi_root_program();
  api::Json body = api::Json::object();
  body.set("program", api::to_json(p));
  body.set("method", api::Json(std::string("mcts")));
  body.set("iterations", api::Json(static_cast<std::int64_t>(25)));
  api::Result<api::SearchRequest> decoded = api::search_request_from_json(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->method, SearchMethod::kMcts);
  EXPECT_EQ(decoded->mcts_iterations, 25);

  body.set("method", api::Json(std::string("annealing")));
  EXPECT_EQ(api::search_request_from_json(body).status().code(),
            api::StatusCode::kInvalidArgument);
  body.set("method", api::Json(std::string("beam")));
  body.set("beam_width", api::Json(static_cast<std::int64_t>(0)));
  EXPECT_EQ(api::search_request_from_json(body).status().code(),
            api::StatusCode::kInvalidArgument);
  EXPECT_EQ(api::search_request_from_json(api::Json(std::string("x"))).status().code(),
            api::StatusCode::kInvalidArgument);
}

TEST(SearchWire, JobInfoEncodingRoundTripsTheSchedule) {
  SearchJobInfo info;
  info.id = "sj-000001";
  info.state = JobState::kDone;
  info.reused = true;
  info.progress = 1.0;
  info.evaluations = 12;
  info.best_speedup = 2.25;
  info.baseline_speedup = 1.0;
  info.program_fingerprint = 18446744073709551615ull;  // u64 max: string field
  info.best_schedule.tiles.push_back({0, 0, {32, 32}});
  const api::Json j = api::to_json(info);
  EXPECT_EQ(j.find("job_id")->as_string(), "sj-000001");
  EXPECT_EQ(j.find("state")->as_string(), "DONE");
  EXPECT_TRUE(j.find("reused")->as_bool());
  EXPECT_EQ(j.find("program_fingerprint")->as_string(), "18446744073709551615");
  api::Result<transforms::Schedule> schedule = api::schedule_from_json(*j.find("schedule"));
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->to_string(), info.best_schedule.to_string());
}

}  // namespace
}  // namespace tcm::jobs
