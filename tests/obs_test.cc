// Tests for the observability layer (src/obs/*): histogram bucket math and
// Prometheus rendering, trace sampling/ring semantics, Chrome trace_event
// export validity, span correlation across the serving stack's thread hop,
// and an exposition-format lint over the full /metrics render.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <fstream>

#include "api/json.h"
#include "api/metrics.h"
#include "api/service.h"
#include "datagen/generator.h"
#include "model/cost_model.h"
#include "model/featurize.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/process.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "registry/model_registry.h"
#include "support/log.h"

namespace fs = std::filesystem;

namespace tcm {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, BucketsCountsAndSum) {
  obs::Histogram h("t", "help", "", {1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (le=1)
  h.observe(1.0);    // le is inclusive-upper in Prometheus: upper_bound puts
                     // exactly-1.0 in bucket 1... assert via snapshot below
  h.observe(5.0);    // bucket 1 (le=10)
  h.observe(50.0);   // bucket 2 (le=100)
  h.observe(5000.0); // overflow (+Inf)
  const obs::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[3], 1u);  // only the 5000 lands past the last bound
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 5.0 + 50.0 + 5000.0);
  // Negative observations clamp into the first bucket, not the sum.
  h.observe(-3.0);
  EXPECT_EQ(h.snapshot().counts[0], s.counts[0] + 1);
  EXPECT_DOUBLE_EQ(h.snapshot().sum, s.sum);
}

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
  obs::Histogram h("t", "help", "", {1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h.observe(1.5);  // all in (1,2]
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  EXPECT_GT(h.quantile(0.99), 1.0);
  // Empty histogram reports 0.
  obs::Histogram empty("e", "help", "", {1.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.99), 0.0);
}

TEST(Histogram, ExponentialBucketsAreLogSpaced) {
  const std::vector<double> b = obs::exponential_buckets(1e-6, 2.0, 5);
  ASSERT_EQ(b.size(), 5u);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_DOUBLE_EQ(b[i], b[i - 1] * 2.0);
  EXPECT_THROW(obs::exponential_buckets(0.0, 2.0, 3), std::invalid_argument);
  EXPECT_THROW(obs::exponential_buckets(1.0, 1.0, 3), std::invalid_argument);
}

TEST(Histogram, ConcurrentObserveLosesNothing) {
  obs::Histogram h("t", "help", "", obs::exponential_buckets(1e-6, 2.0, 20));
  constexpr int kThreads = 8, kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(1e-4);
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.snapshot().count, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, RendersFamiliesOnceAndGetOrCreates) {
  obs::MetricsRegistry reg;
  obs::Histogram& a = reg.histogram("fam", "a family", "stage=\"x\"", {1.0});
  obs::Histogram& a2 = reg.histogram("fam", "a family", "stage=\"x\"", {1.0});
  EXPECT_EQ(&a, &a2);  // same (name, labels) -> same histogram
  reg.histogram("fam", "a family", "stage=\"y\"", {1.0});
  a.observe(0.5);
  const std::string text = reg.render_prometheus();
  // One HELP/TYPE preamble for the two-member family.
  EXPECT_EQ(text.find("# TYPE fam histogram"), text.rfind("# TYPE fam histogram"));
  EXPECT_NE(text.find("fam_bucket{stage=\"x\",le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("fam_bucket{stage=\"y\",le=\"+Inf\"} 0"), std::string::npos);
  EXPECT_NE(text.find("fam_count{stage=\"x\"} 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Counters, gauges, and the unified render
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CounterAndGaugeGetOrCreateAndRender) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("hits_total", "hits", "route=\"/a\"");
  EXPECT_EQ(&c, &reg.counter("hits_total", "hits", "route=\"/a\""));
  obs::Counter& c2 = reg.counter("hits_total", "hits", "route=\"/b\"");
  EXPECT_NE(&c, &c2);
  c.inc();
  c.inc(41);
  c2.inc();
  obs::Gauge& g = reg.gauge("depth", "queue depth");
  g.set(7.5);
  g.add(-0.5);
  reg.gauge_callback("uptime", "seconds", "", [] { return 3.0; });

  const std::string text = reg.render_prometheus();
  // One preamble for the two-member counter family.
  EXPECT_EQ(text.find("# TYPE hits_total counter"), text.rfind("# TYPE hits_total counter"));
  EXPECT_NE(text.find("hits_total{route=\"/a\"} 42"), std::string::npos);
  EXPECT_NE(text.find("hits_total{route=\"/b\"} 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("depth 7"), std::string::npos);
  EXPECT_NE(text.find("uptime 3"), std::string::npos);
}

TEST(MetricsRegistry, CrossKindFamilyRegistrationThrows) {
  obs::MetricsRegistry reg;
  reg.counter("fam_total", "a counter");
  EXPECT_THROW(reg.gauge("fam_total", "now a gauge?"), std::logic_error);
  EXPECT_THROW(reg.histogram("fam_total", "now a histogram?", "", {1.0}), std::logic_error);
  // A plain gauge and a callback gauge may share a family (both render as
  // the one gauge TYPE).
  reg.gauge("g", "plain", "kind=\"a\"");
  reg.gauge_callback("g", "plain", "kind=\"b\"", [] { return 1.0; });
  const std::string text = reg.render_prometheus();
  EXPECT_EQ(text.find("# TYPE g gauge"), text.rfind("# TYPE g gauge"));
}

TEST(MetricsRegistry, ConcurrentCounterIncLosesNothing) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("n_total", "n");
  constexpr int kThreads = 8, kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, EmittedFamiliesSetDedupesPreamblesAcrossSources) {
  obs::MetricsRegistry reg;
  reg.counter("shared_total", "registry side").inc();
  std::set<std::string> seen;
  seen.insert("shared_total");  // the hand-rendered source already emitted it
  const std::string text = reg.render_prometheus(&seen);
  EXPECT_EQ(text.find("# TYPE shared_total"), std::string::npos);
  EXPECT_NE(text.find("shared_total 1"), std::string::npos);
  // And the registry records what *it* emitted for later sources.
  reg.gauge("fresh", "registry-only").set(2);
  std::set<std::string> seen2;
  (void)reg.render_prometheus(&seen2);
  EXPECT_TRUE(seen2.count("fresh"));
}

// ---------------------------------------------------------------------------
// EventLog flight recorder
// ---------------------------------------------------------------------------

// The EventLog is a process-global singleton; reset it around each test.
struct EventLogGuard {
  EventLogGuard() { obs::EventLog::instance().set_capacity(512); }
  ~EventLogGuard() { obs::EventLog::instance().set_capacity(512); }
};

TEST(EventLog, RingWrapsKeepingNewestInOrder) {
  EventLogGuard guard;
  obs::EventLog& log = obs::EventLog::instance();
  log.set_capacity(8);
  for (int i = 1; i <= 20; ++i)
    log.emit("tick", "info", "n=" + std::to_string(i), static_cast<std::uint64_t>(i));
  EXPECT_EQ(log.total_emitted(), 20u);
  const std::vector<obs::Event> events = log.events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first, newest 8 survive, seq strictly ascending.
  EXPECT_EQ(events.front().detail, "n=13");
  EXPECT_EQ(events.back().detail, "n=20");
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  EXPECT_EQ(events.back().trace_id, 20u);
  EXPECT_STREQ(events.back().type, "tick");
}

TEST(EventLog, ConcurrentEmittersProduceDenseSequence) {
  EventLogGuard guard;
  obs::EventLog& log = obs::EventLog::instance();
  log.set_capacity(4096);
  constexpr int kThreads = 8, kPerThread = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i)
        log.emit("burst", "info", "t=" + std::to_string(t));
    });
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(log.total_emitted(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const std::vector<obs::Event> events = log.events();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1) << "gap at " << i;
}

TEST(EventLog, RenderJsonParsesAndCarriesTheSequence) {
  EventLogGuard guard;
  obs::EventLog& log = obs::EventLog::instance();
  log.set_capacity(64);
  // The canonical autopilot lifecycle, threaded by one trace id.
  log.emit("drift_trigger", "warn", "reason=\"psi over threshold\" psi=0.31/0.25", 99);
  log.emit("cycle_start", "info", "incumbent=v3", 99);
  log.emit("cycle_finish", "info", "candidate=v4 promoted=1", 99);
  log.emit("promote", "info", "from=v3 to=v4 by=cycle", 99);

  const std::string json = log.render_json();
  api::Result<api::Json> doc = api::Json::parse(json);
  ASSERT_TRUE(doc.ok()) << json;
  EXPECT_EQ(doc->find("emitted")->as_int(), 4);
  EXPECT_EQ(doc->find("dropped")->as_int(), 0);
  const api::Json* events = doc->find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->as_array().size(), 4u);
  const std::vector<std::string> expected = {"drift_trigger", "cycle_start", "cycle_finish",
                                             "promote"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const api::Json& e = events->as_array()[i];
    EXPECT_EQ(e.find("type")->as_string(), expected[i]);
    EXPECT_EQ(e.find("trace_id")->as_int(), 99);
    ASSERT_NE(e.find("wall_ms"), nullptr);
  }
  // Escaping: the quoted reason string survived as JSON.
  EXPECT_EQ(events->as_array()[0].find("detail")->as_string(),
            "reason=\"psi over threshold\" psi=0.31/0.25");
}

TEST(EventLog, DumpToFdWritesParseableJson) {
  EventLogGuard guard;
  obs::EventLog& log = obs::EventLog::instance();
  log.set_capacity(16);
  log.emit("drift_trigger", "warn", "reason=\"ks \\ fired\"", 7);
  log.emit("cycle_fail", "error", std::string("boom\nnewline\tand control\x01chars"), 7);

  const fs::path path = fs::path(::testing::TempDir()) / "tcm_obs_flight.json";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  log.dump_to_fd(fd);
  ::close(fd);

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  api::Result<api::Json> doc = api::Json::parse(buf.str());
  ASSERT_TRUE(doc.ok()) << buf.str();
  EXPECT_EQ(doc->find("emitted")->as_int(), 2);
  const api::Json* events = doc->find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->as_array().size(), 2u);
  EXPECT_EQ(events->as_array()[0].find("type")->as_string(), "drift_trigger");
  EXPECT_EQ(events->as_array()[1].find("severity")->as_string(), "error");
  // Control characters were replaced, not emitted raw.
  const std::string detail = events->as_array()[1].find("detail")->as_string();
  for (char c : detail) EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << detail;
}

// ---------------------------------------------------------------------------
// Watchdog (fake clock: stall detection without sleeping)
// ---------------------------------------------------------------------------

std::atomic<std::uint64_t> g_fake_now_ns{0};
std::uint64_t fake_now() { return g_fake_now_ns.load(std::memory_order_relaxed); }

TEST(Watchdog, BusyThreadStallsIdleThreadNever) {
  g_fake_now_ns.store(0);
  obs::Watchdog dog(&fake_now);
  const obs::Watchdog::Handle worker =
      dog.register_thread("batch_worker_0", std::chrono::milliseconds(100), /*critical=*/true);
  const obs::Watchdog::Handle poller =
      dog.register_thread("autopilot_poller", std::chrono::milliseconds(100), /*critical=*/false);
  EXPECT_EQ(dog.registered_threads(), 2u);

  // Both idle: any age is fine.
  g_fake_now_ns.store(10'000'000'000ull);  // +10s
  EXPECT_EQ(dog.report().health, obs::Watchdog::Health::kHealthy);

  // Busy inside the window: healthy.
  dog.set_busy(worker, "run_batch");
  g_fake_now_ns.fetch_add(50'000'000ull);  // +50ms
  EXPECT_EQ(dog.report().health, obs::Watchdog::Health::kHealthy);

  // Busy past the window: a critical stall is unhealthy, with the reason.
  g_fake_now_ns.fetch_add(200'000'000ull);  // +200ms
  obs::Watchdog::Report report = dog.report();
  EXPECT_EQ(report.health, obs::Watchdog::Health::kUnhealthy);
  EXPECT_NE(report.reason.find("batch_worker_0"), std::string::npos);
  EXPECT_NE(report.reason.find("run_batch"), std::string::npos);
  ASSERT_EQ(report.threads.size(), 2u);
  EXPECT_TRUE(report.threads[0].stalled);
  EXPECT_FALSE(report.threads[1].stalled);  // idle never stalls

  // A beat recovers it.
  dog.beat(worker);
  EXPECT_EQ(dog.report().health, obs::Watchdog::Health::kHealthy);

  // A stalled non-critical thread only degrades.
  dog.set_idle(worker);
  dog.set_busy(poller, "poll");
  g_fake_now_ns.fetch_add(200'000'000ull);
  report = dog.report();
  EXPECT_EQ(report.health, obs::Watchdog::Health::kDegraded);
  EXPECT_NE(report.reason.find("autopilot_poller"), std::string::npos);

  // Unregistered threads leave the report entirely.
  dog.unregister(poller);
  report = dog.report();
  EXPECT_EQ(report.health, obs::Watchdog::Health::kHealthy);
  EXPECT_EQ(report.threads.size(), 1u);
  EXPECT_EQ(dog.registered_threads(), 1u);
}

TEST(Watchdog, InvalidHandleIsANoOp) {
  obs::Watchdog dog;
  obs::Watchdog::Handle none;
  EXPECT_FALSE(none.valid());
  dog.beat(none);
  dog.set_busy(none, "x");
  dog.set_idle(none);
  dog.unregister(none);
  EXPECT_EQ(dog.report().health, obs::Watchdog::Health::kHealthy);
}

// ---------------------------------------------------------------------------
// Process self-metrics
// ---------------------------------------------------------------------------

TEST(ProcessMetrics, ReadsProcAndRegistersFamilies) {
#ifdef __linux__
  const obs::ProcessStats stats = obs::read_process_stats();
  EXPECT_GT(stats.resident_bytes, 0u);
  EXPECT_GT(stats.virtual_bytes, stats.resident_bytes / 2);
  EXPECT_GT(stats.open_fds, 0u);
  EXPECT_GE(stats.threads, 1u);
  EXPECT_GE(stats.uptime_seconds, 0.0);
#endif
  obs::MetricsRegistry reg;
  obs::register_process_metrics(reg);
  const std::string text = reg.render_prometheus();
  for (const char* family :
       {"tcm_process_resident_memory_bytes", "tcm_process_open_fds", "tcm_process_threads",
        "tcm_process_uptime_seconds", "tcm_build_info"})
    EXPECT_NE(text.find(std::string("# TYPE ") + family + " gauge"), std::string::npos)
        << family;
  EXPECT_NE(text.find("tcm_build_info{"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

// The Tracer is a process-global singleton; each test leaves it disabled and
// empty so tests stay order-independent.
struct TracerGuard {
  TracerGuard() {
    obs::Tracer::instance().set_sample_rate(0.0);
    obs::Tracer::instance().clear();
  }
  ~TracerGuard() {
    obs::Tracer::instance().set_sample_rate(0.0);
    obs::Tracer::instance().clear();
  }
};

TEST(Tracer, StrideSamplingIsDeterministic) {
  TracerGuard guard;
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_sample_rate(0.25);  // stride 4
  int sampled = 0;
  for (int i = 0; i < 400; ++i)
    if (tracer.sample_request() != 0) ++sampled;
  EXPECT_EQ(sampled, 100);

  tracer.set_sample_rate(0.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(tracer.sample_request(), 0u);
  EXPECT_FALSE(tracer.enabled());

  // force_request captures regardless of the stride position (but never when
  // tracing is fully off).
  EXPECT_EQ(tracer.force_request(), 0u);
  tracer.set_sample_rate(0.01);
  EXPECT_NE(tracer.force_request(), 0u);
}

TEST(Tracer, RingKeepsNewestSpans) {
  TracerGuard guard;
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_sample_rate(1.0);
  tracer.set_capacity(8);
  for (std::uint64_t i = 1; i <= 20; ++i) tracer.record("span", i, i * 10, i * 10 + 5);
  const std::vector<obs::SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 8u);
  // Oldest first, and only the newest 8 survive the wrap.
  EXPECT_EQ(spans.front().trace_id, 13u);
  EXPECT_EQ(spans.back().trace_id, 20u);
  tracer.set_capacity(1 << 14);  // restore the default
}

TEST(Tracer, ContextNestsAndSpansSkipUnsampled) {
  TracerGuard guard;
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_sample_rate(1.0);
  EXPECT_EQ(obs::current_trace_id(), 0u);
  {
    obs::TraceContext outer(42);
    EXPECT_EQ(obs::current_trace_id(), 42u);
    {
      obs::TraceContext inner(7);
      EXPECT_EQ(obs::current_trace_id(), 7u);
    }
    EXPECT_EQ(obs::current_trace_id(), 42u);
    { TCM_TRACE_SPAN("nested.work"); }
  }
  EXPECT_EQ(obs::current_trace_id(), 0u);
  { TCM_TRACE_SPAN("unsampled.work"); }  // context is 0: records nothing
  const std::vector<obs::SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "nested.work");
  EXPECT_EQ(spans[0].trace_id, 42u);
  EXPECT_GE(spans[0].end_ns, spans[0].start_ns);
}

TEST(Tracer, ChromeExportIsValidTraceEventJson) {
  TracerGuard guard;
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_sample_rate(1.0);
  const std::uint64_t id = tracer.sample_request();
  tracer.set_label(id, "req \"quoted\"\n");  // exercises JSON escaping
  tracer.record("alpha", id, 1000, 3000);
  tracer.record("beta", id, 2000, 2500);

  const std::string json = tracer.export_chrome_json();
  api::Result<api::Json> doc = api::Json::parse(json);
  ASSERT_TRUE(doc.ok()) << json;
  EXPECT_EQ(doc->find("displayTimeUnit")->as_string(), "ms");
  const api::Json* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->as_array().size(), 2u);
  const api::Json& first = events->as_array()[0];
  EXPECT_EQ(first.find("name")->as_string(), "alpha");  // sorted by start
  EXPECT_EQ(first.find("ph")->as_string(), "X");
  EXPECT_DOUBLE_EQ(first.find("ts")->as_double(), 1.0);   // 1000ns -> 1us
  EXPECT_DOUBLE_EQ(first.find("dur")->as_double(), 2.0);  // 2000ns
  EXPECT_EQ(first.find("args")->find("request_id")->as_string(), "req \"quoted\"\n");
}

// ---------------------------------------------------------------------------
// End-to-end: a traced predict produces correlated, sanely-ordered spans
// ---------------------------------------------------------------------------

std::string make_registry(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("tcm_obs_" + name);
  fs::remove_all(dir);
  registry::ModelRegistry reg(dir.string());
  Rng rng(404);
  model::CostModel m(model::ModelConfig::fast(), rng);
  registry::ModelManifest manifest;
  manifest.config = model::ModelConfig::fast();
  manifest.provenance = "obs_test";
  reg.register_version(m, manifest);
  reg.promote(1);
  return dir.string();
}

api::Result<std::unique_ptr<api::Service>> open_service(const std::string& name) {
  api::ServiceOptions opt;
  opt.registry_root = make_registry(name);
  opt.serve.num_threads = 2;
  opt.serve.features = model::FeatureConfig::fast();
  opt.serve.max_queue_latency = std::chrono::microseconds(200);
  return api::Service::open(std::move(opt));
}

TEST(Tracing, PredictSpansCorrelateAcrossTheBatcherHop) {
  TracerGuard guard;
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_sample_rate(1.0);

  api::Result<std::unique_ptr<api::Service>> svc = open_service("spans");
  ASSERT_TRUE(svc.ok()) << svc.status().to_string();

  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  datagen::RandomScheduleGenerator sgen;
  Rng rng(11);
  api::PredictRequest request;
  request.program = gen.generate(5);
  request.schedules.push_back(sgen.generate(request.program, rng));

  // Install a request context the way the HTTP edge does.
  const std::uint64_t trace_id = tracer.sample_request();
  ASSERT_NE(trace_id, 0u);
  {
    obs::TraceContext ctx(trace_id);
    ASSERT_TRUE((*svc)->predict(request).ok());
  }
  ASSERT_TRUE((*svc)->quiesce().ok());

  std::map<std::string, obs::SpanRecord> by_name;
  for (const obs::SpanRecord& s : tracer.spans())
    if (s.trace_id == trace_id) by_name[s.name] = s;

  // The synchronous layer and the batch worker both logged under the one id.
  for (const char* expected :
       {"api.predict", "serve.featurize", "serve.queue_wait", "serve.batch_assemble",
        "serve.infer", "serve.e2e"})
    EXPECT_TRUE(by_name.count(expected)) << "missing span " << expected;
  ASSERT_TRUE(by_name.count("api.predict"));
  ASSERT_TRUE(by_name.count("serve.infer"));
  ASSERT_TRUE(by_name.count("serve.queue_wait"));
  ASSERT_TRUE(by_name.count("serve.e2e"));

  const obs::SpanRecord& predict = by_name["api.predict"];
  const obs::SpanRecord& infer = by_name["serve.infer"];
  const obs::SpanRecord& queue = by_name["serve.queue_wait"];
  const obs::SpanRecord& e2e = by_name["serve.e2e"];
  // Nesting: the facade call envelops the whole pipeline; the queue wait
  // starts at enqueue (inside predict) and precedes inference; e2e covers
  // queue through inference.
  EXPECT_LE(predict.start_ns, queue.start_ns);
  EXPECT_LE(queue.end_ns, infer.end_ns);
  EXPECT_LE(infer.end_ns, predict.end_ns);
  EXPECT_EQ(e2e.start_ns, queue.start_ns);  // both anchored at enqueue time
  EXPECT_GE(e2e.end_ns, infer.start_ns);
}

// ---------------------------------------------------------------------------
// Exposition lint: the full /metrics render is valid Prometheus 0.0.4
// ---------------------------------------------------------------------------

bool valid_metric_line(const std::string& line) {
  // name{labels} value  |  name value — one space, parsable double value.
  const std::size_t sp = line.rfind(' ');
  if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) return false;
  const std::string name_part = line.substr(0, sp);
  const std::string value_part = line.substr(sp + 1);
  if (value_part != "+Inf" && value_part != "-Inf" && value_part != "NaN") {
    try {
      std::size_t used = 0;
      (void)std::stod(value_part, &used);
      if (used != value_part.size()) return false;
    } catch (...) {
      return false;
    }
  }
  const std::size_t brace = name_part.find('{');
  const std::string name = brace == std::string::npos ? name_part : name_part.substr(0, brace);
  if (name.empty()) return false;
  for (char c : name)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')) return false;
  if (brace != std::string::npos && name_part.back() != '}') return false;
  return true;
}

TEST(Exposition, FullMetricsRenderPassesFormatLint) {
  TracerGuard guard;
  api::Result<std::unique_ptr<api::Service>> svc = open_service("lint");
  ASSERT_TRUE(svc.ok()) << svc.status().to_string();

  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  datagen::RandomScheduleGenerator sgen;
  Rng rng(23);
  api::PredictRequest request;
  request.program = gen.generate(6);
  for (int i = 0; i < 8; ++i) request.schedules.push_back(sgen.generate(request.program, rng));
  ASSERT_TRUE((*svc)->predict(request).ok());
  ASSERT_TRUE((*svc)->quiesce().ok());

  const std::string text =
      api::prometheus_text((*svc)->stats(), (*svc)->metrics().get(), nullptr);

  std::set<std::string> typed;            // names with a TYPE line
  std::map<std::string, std::string> types;
  std::map<std::string, std::vector<std::pair<double, std::uint64_t>>> buckets;  // per series
  std::map<std::string, std::uint64_t> counts;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream t(line.substr(7));
      std::string name, type;
      t >> name >> type;
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram") << line;
      // One TYPE per family.
      EXPECT_TRUE(typed.insert(name).second) << "duplicate TYPE for " << name;
      types[name] = type;
      continue;
    }
    if (line[0] == '#') continue;
    EXPECT_TRUE(valid_metric_line(line)) << "invalid exposition line: " << line;
    // Collect histogram bucket series for monotonicity / consistency checks.
    // Series key = everything before the le label (trailing '{' or ','
    // trimmed), e.g. `fam_bucket{stage="x"` or plain `fam_bucket`.
    const std::size_t le_pos = line.rfind("le=\"");
    if (line.find("_bucket{") != std::string::npos && le_pos != std::string::npos) {
      std::size_t key_end = le_pos;
      if (key_end > 0 && (line[key_end - 1] == ',' || line[key_end - 1] == '{')) --key_end;
      const std::string series = line.substr(0, key_end);
      const std::size_t le_start = le_pos + 4;
      const std::size_t le_end = line.find('"', le_start);
      const std::string le = line.substr(le_start, le_end - le_start);
      const double bound =
          le == "+Inf" ? std::numeric_limits<double>::infinity() : std::stod(le);
      const std::uint64_t value = std::stoull(line.substr(line.rfind(' ') + 1));
      buckets[series].emplace_back(bound, value);
      continue;
    }
    if (line.find("_count") != std::string::npos) {
      const std::string fam_and_labels = line.substr(0, line.rfind(' '));
      counts[fam_and_labels] = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }

  // Every metric name used in a sample has a TYPE; spot-check a few.
  for (const char* name : {"tcm_serve_requests_total", "tcm_serve_latency_seconds",
                           "tcm_stage_duration_seconds", "tcm_serve_batch_size"})
    EXPECT_TRUE(typed.count(name)) << "no TYPE line for " << name;
  EXPECT_EQ(types["tcm_serve_latency_seconds"], "histogram");

  // Histogram invariants: bounds ascending, cumulative counts monotone, and
  // the +Inf bucket equals the series' _count.
  ASSERT_FALSE(buckets.empty());
  for (const auto& [series, entries] : buckets) {
    for (std::size_t i = 1; i < entries.size(); ++i) {
      EXPECT_LT(entries[i - 1].first, entries[i].first) << series;
      EXPECT_LE(entries[i - 1].second, entries[i].second)
          << series << " cumulative counts must be monotone";
    }
    ASSERT_TRUE(std::isinf(entries.back().first)) << series << " missing le=\"+Inf\"";
    // series is `name_bucket` or `name_bucket{labels` — swap _bucket for
    // _count and close the brace when non-le labels remain.
    const std::size_t b = series.find("_bucket");
    ASSERT_NE(b, std::string::npos) << series;
    const std::string labels = series.substr(b + 7);  // "" or `{stage="x"`
    std::string count_key = series.substr(0, b) + "_count" + labels;
    if (!labels.empty()) count_key += "}";
    const auto it = counts.find(count_key);
    ASSERT_NE(it, counts.end()) << "no _count for " << series << " (looked up " << count_key
                                << ")";
    EXPECT_EQ(entries.back().second, it->second) << series;
  }

  // The e2e latency histogram saw all 8 predictions.
  EXPECT_NE(text.find("tcm_serve_latency_seconds_count 8\n"), std::string::npos);

  // The registry-owned families are part of the surface from the first
  // scrape — drift signals and autopilot counters even without --autopilot,
  // queue/cache gauges, process self-metrics, build info.
  for (const char* family :
       {"tcm_drift_signal", "tcm_drift_threshold", "tcm_drift_drifted",
        "tcm_autopilot_polls_total", "tcm_autopilot_triggers_total",
        "tcm_autopilot_cycles_total", "tcm_autopilot_cycle_failures_total",
        "tcm_autopilot_gc_removed_total", "tcm_serve_queue_depth", "tcm_serve_cache_hit_ratio",
        "tcm_process_resident_memory_bytes", "tcm_process_open_fds", "tcm_build_info"})
    EXPECT_TRUE(typed.count(family)) << "no TYPE line for " << family;
  EXPECT_NE(text.find("tcm_drift_signal{signal=\"psi\"}"), std::string::npos);
  EXPECT_NE(text.find("tcm_autopilot_cycles_total{outcome=\"promoted\"}"), std::string::npos);
  // The per-batch gauges were set by the workers that served the request.
  EXPECT_NE(text.find("tcm_serve_cache_hit_ratio"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Structured logging
// ---------------------------------------------------------------------------

std::vector<std::string>& captured_lines() {
  static std::vector<std::string> lines;
  return lines;
}

void capture_sink(LogLevel, const std::string& line) { captured_lines().push_back(line); }

TEST(Log, LineCarriesTimestampLevelTidAndKvSuffix) {
  captured_lines().clear();
  set_log_sink(&capture_sink);
  const LogLevel before = log_level();
  set_log_level(LogLevel::Info);
  log_warn() << "slow request" << kv("route", "/v1/predict") << kv("ms", 512)
             << kv("note", "two words");
  set_log_sink(nullptr);
  set_log_level(before);

  ASSERT_EQ(captured_lines().size(), 1u);
  const std::string& line = captured_lines()[0];
  // [YYYY-MM-DDTHH:MM:SS.mmmZ] [WARN ] [tid N] msg k=v ...
  ASSERT_GE(line.size(), 26u);
  EXPECT_EQ(line[0], '[');
  EXPECT_EQ(line[5], '-');
  EXPECT_EQ(line[11], 'T');
  EXPECT_EQ(line[20], '.');
  EXPECT_EQ(line[24], 'Z');
  EXPECT_NE(line.find("] [WARN ] [tid "), std::string::npos);
  EXPECT_NE(line.find("slow request route=/v1/predict ms=512 note=\"two words\""),
            std::string::npos);
}

TEST(Log, ParseLogLevelAndEnvInit) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("loud"), std::nullopt);

  const LogLevel before = log_level();
  ::setenv("TCM_LOG_LEVEL", "error", 1);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::Error);
  ::setenv("TCM_LOG_LEVEL", "not-a-level", 1);
  init_log_level_from_env();          // unparsable: level unchanged
  EXPECT_EQ(log_level(), LogLevel::Error);
  ::unsetenv("TCM_LOG_LEVEL");
  set_log_level(before);
}

TEST(Log, RateLimitSuppressesFloodsAndReportsOnNextPass) {
  captured_lines().clear();
  set_log_sink(&capture_sink);
  const LogLevel before = log_level();
  set_log_level(LogLevel::Info);
  // rate 0 = no refill: exactly `burst` lines pass, deterministically.
  set_log_rate_limit(/*lines_per_sec=*/0.0, /*burst=*/3.0);
  const std::uint64_t suppressed_before = log_suppressed_total();
  for (int i = 0; i < 10; ++i) log_warn() << "flood " << i;
  EXPECT_EQ(captured_lines().size(), 3u);
  EXPECT_EQ(log_suppressed_total() - suppressed_before, 7u);

  // Info/debug lines bypass the limiter entirely.
  log_info() << "not limited";
  EXPECT_EQ(captured_lines().size(), 4u);

  // Reconfiguring refills the bucket but keeps the pending count: the next
  // admitted WARN carries the suppressed=N trailer.
  set_log_rate_limit(64.0, 256.0);
  log_warn() << "after the flood";
  ASSERT_EQ(captured_lines().size(), 5u);
  EXPECT_NE(captured_lines().back().find("after the flood suppressed=7"), std::string::npos)
      << captured_lines().back();

  // burst <= 0 disables the limiter.
  set_log_rate_limit(0.0, 0.0);
  for (int i = 0; i < 5; ++i) log_error() << "unlimited " << i;
  EXPECT_EQ(captured_lines().size(), 10u);

  set_log_rate_limit(64.0, 256.0);  // restore defaults
  set_log_sink(nullptr);
  set_log_level(before);
}

TEST(Log, LevelThresholdDropsBelow) {
  captured_lines().clear();
  set_log_sink(&capture_sink);
  const LogLevel before = log_level();
  set_log_level(LogLevel::Warn);
  log_debug() << "dropped";
  log_info() << "dropped too";
  log_error() << "kept";
  set_log_sink(nullptr);
  set_log_level(before);
  ASSERT_EQ(captured_lines().size(), 1u);
  EXPECT_NE(captured_lines()[0].find("[ERROR]"), std::string::npos);
  EXPECT_NE(captured_lines()[0].find("kept"), std::string::npos);
}

}  // namespace
}  // namespace tcm
