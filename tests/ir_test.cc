#include <gtest/gtest.h>

#include "ir/access.h"
#include "ir/builder.h"
#include "ir/expr.h"
#include "ir/program.h"

namespace tcm::ir {
namespace {

// ---------------------------------------------------------------------------
// AccessMatrix
// ---------------------------------------------------------------------------

TEST(AccessMatrix, IdentityShape) {
  const AccessMatrix m = AccessMatrix::identity(2, 3);
  EXPECT_EQ(m.rank(), 2);
  EXPECT_EQ(m.depth(), 3);
  EXPECT_EQ(m.at(0, 0), 1);
  EXPECT_EQ(m.at(1, 1), 1);
  EXPECT_EQ(m.at(0, 1), 0);
  EXPECT_EQ(m.constant(0), 0);
}

TEST(AccessMatrix, IdentityRankAboveDepthThrows) {
  EXPECT_THROW(AccessMatrix::identity(3, 2), std::invalid_argument);
}

TEST(AccessMatrix, PaperExampleEvaluation) {
  // A[i0, i0+i1, i1-2] from Section 4.1.
  AccessMatrix m(3, 2);
  m.set(0, 0, 1);
  m.set(1, 0, 1);
  m.set(1, 1, 1);
  m.set(2, 1, 1);
  m.set(2, 2, -2);
  const auto idx = m.evaluate(std::vector<std::int64_t>{4, 7});
  EXPECT_EQ(idx, (std::vector<std::int64_t>{4, 11, 5}));
}

TEST(AccessMatrix, IndexRangesOverBox) {
  AccessMatrix m(1, 2);
  m.set(0, 0, 2);
  m.set(0, 1, -1);
  m.set(0, 2, 5);
  // i0 in [0,3), i1 in [0,4): range = [5 - 3, 5 + 2*2] = [2, 9]
  const auto r = m.index_ranges(std::vector<std::int64_t>{3, 4});
  EXPECT_EQ(r[0].min, 2);
  EXPECT_EQ(r[0].max, 9);
}

TEST(AccessMatrix, InterchangeSwapsColumns) {
  AccessMatrix m(1, 3);
  m.set(0, 0, 1);
  m.set(0, 2, 7);
  m.interchange(0, 2);
  EXPECT_EQ(m.at(0, 0), 7);
  EXPECT_EQ(m.at(0, 2), 1);
}

TEST(AccessMatrix, SplitIntroducesTilePair) {
  AccessMatrix m(1, 2);
  m.set(0, 0, 3);   // 3*i0
  m.set(0, 1, 1);   // + i1
  m.set(0, 2, 5);   // + 5
  m.split(0, 4);    // i0 = 4*o + i
  EXPECT_EQ(m.depth(), 3);
  EXPECT_EQ(m.at(0, 0), 12);  // 3*4 on outer
  EXPECT_EQ(m.at(0, 1), 3);   // 3 on inner
  EXPECT_EQ(m.at(0, 2), 1);   // shifted i1
  EXPECT_EQ(m.constant(0), 5);
}

TEST(AccessMatrix, SkewRewritesPartnerColumn) {
  // A[i, j] with t = j + 2*i (col 0 = i, col 1 = t): the value of j is
  // t - 2*i, so each row's i coefficient drops by 2 * (its j coefficient).
  AccessMatrix m(2, 2);
  m.set(0, 0, 1);  // row 0: i
  m.set(1, 1, 1);  // row 1: j
  m.set(1, 2, 3);  // + 3
  m.skew(0, 1, 2);
  EXPECT_EQ(m.at(0, 0), 1);   // i row untouched (no j coefficient)
  EXPECT_EQ(m.at(1, 0), -2);  // j row: -2*i
  EXPECT_EQ(m.at(1, 1), 1);   // + t
  EXPECT_EQ(m.constant(1), 3);
}

TEST(AccessMatrix, InsertZeroColumn) {
  AccessMatrix m(1, 1);
  m.set(0, 0, 2);
  m.set(0, 1, 9);
  m.insert_zero_column(0);
  EXPECT_EQ(m.depth(), 2);
  EXPECT_EQ(m.at(0, 0), 0);
  EXPECT_EQ(m.at(0, 1), 2);
  EXPECT_EQ(m.constant(0), 9);
}

TEST(AccessMatrix, InvariantTo) {
  AccessMatrix m(2, 3);
  m.set(0, 0, 1);
  m.set(1, 2, 1);
  EXPECT_FALSE(m.invariant_to(0));
  EXPECT_TRUE(m.invariant_to(1));
  EXPECT_FALSE(m.invariant_to(2));
}

TEST(AccessMatrix, OutOfRangeThrows) {
  AccessMatrix m(1, 1);
  EXPECT_THROW(m.at(1, 0), std::out_of_range);
  EXPECT_THROW(m.set(0, 3, 1), std::out_of_range);
  EXPECT_THROW(m.interchange(0, 1), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Expr
// ---------------------------------------------------------------------------

Expr make_load(int buffer, int rank, int depth) {
  return Expr::load(BufferAccess{buffer, AccessMatrix::identity(rank, depth)});
}

TEST(Expr, OpCounts) {
  // (a + b) * c / 2 - a  => 1 add, 1 mul, 1 div, 1 sub
  const Expr e = Expr::sub(
      Expr::div(Expr::mul(Expr::add(make_load(0, 1, 2), make_load(1, 1, 2)), make_load(2, 1, 2)),
                Expr::constant(2)),
      make_load(0, 1, 2));
  const OpCounts oc = e.op_counts();
  EXPECT_EQ(oc.adds, 1);
  EXPECT_EQ(oc.muls, 1);
  EXPECT_EQ(oc.divs, 1);
  EXPECT_EQ(oc.subs, 1);
  EXPECT_EQ(oc.total(), 4);
}

TEST(Expr, MinMaxCountAsAdds) {
  const Expr e = Expr::binary(ExprKind::Max, make_load(0, 1, 1), Expr::constant(0));
  EXPECT_EQ(e.op_counts().adds, 1);
}

TEST(Expr, LoadsInLeftToRightOrder) {
  const Expr e = Expr::add(make_load(3, 1, 2), Expr::mul(make_load(1, 1, 2), make_load(2, 1, 2)));
  const auto loads = e.loads();
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_EQ(loads[0].buffer_id, 3);
  EXPECT_EQ(loads[1].buffer_id, 1);
  EXPECT_EQ(loads[2].buffer_id, 2);
}

TEST(Expr, MapAccessesRewritesAllLoads) {
  const Expr e = Expr::add(make_load(0, 1, 2), make_load(1, 1, 2));
  const Expr mapped = e.map_accesses([](const AccessMatrix& m) {
    AccessMatrix out = m;
    out.set(0, m.depth(), 42);
    return out;
  });
  for (const BufferAccess& a : mapped.loads()) EXPECT_EQ(a.matrix.constant(0), 42);
  // original untouched (immutability)
  for (const BufferAccess& a : e.loads()) EXPECT_EQ(a.matrix.constant(0), 0);
}

TEST(Expr, LeafAccessorsThrowOnWrongKind) {
  const Expr c = Expr::constant(1.0);
  EXPECT_THROW(c.access(), std::logic_error);
  EXPECT_THROW(c.lhs(), std::logic_error);
  const Expr l = make_load(0, 1, 1);
  EXPECT_THROW(l.constant_value(), std::logic_error);
}

TEST(Expr, BinaryRejectsInvalidOperands) {
  EXPECT_THROW(Expr::add(Expr(), Expr::constant(1)), std::invalid_argument);
  EXPECT_THROW(Expr::binary(ExprKind::Load, Expr::constant(1), Expr::constant(1)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Builder & Program
// ---------------------------------------------------------------------------

TEST(Builder, IndexExprAlgebra) {
  ProgramBuilder b("t");
  Var i = b.var("i", 10), j = b.var("j", 10);
  const IndexExpr e = 2 * i + j - 1;
  EXPECT_EQ(e.coefficients().at(i.id), 2);
  EXPECT_EQ(e.coefficients().at(j.id), 1);
  EXPECT_EQ(e.constant(), -1);
  const IndexExpr z = i - i;  // coefficients cancel out entirely
  EXPECT_TRUE(z.coefficients().empty());
}

TEST(Builder, SimpleProgramStructure) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4), j = b.var("j", 8);
  const int in = b.input("in", {4, 8});
  b.computation("c", {i, j}, {i, j}, b.load(in, {i, j}) + 1.0);
  const Program p = b.build();
  EXPECT_EQ(p.loops.size(), 2u);
  EXPECT_EQ(p.comps.size(), 1u);
  EXPECT_EQ(p.roots.size(), 1u);
  EXPECT_EQ(p.depth_of(0), 2);
  EXPECT_EQ(p.extents_of(0), (std::vector<std::int64_t>{4, 8}));
  EXPECT_FALSE(p.comp(0).is_reduction);
  EXPECT_EQ(p.validate(), std::nullopt);
}

TEST(Builder, SharedLoopPrefix) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4), j = b.var("j", 8), k = b.var("k", 8);
  const int in = b.input("in", {4, 8});
  b.computation("c0", {i, j}, {i, j}, b.load(in, {i, j}));
  b.computation("c1", {i, k}, {i, k}, b.load(in, {i, k}));
  const Program p = b.build();
  // i shared; j and k are siblings under it.
  EXPECT_EQ(p.roots.size(), 1u);
  EXPECT_EQ(p.loops.size(), 3u);
  EXPECT_EQ(p.loop(p.roots[0]).body.size(), 2u);
}

TEST(Builder, SeparateNestsWhenVarsDiffer) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4), i2 = b.var("i2", 4);
  const int in = b.input("in", {4});
  b.computation("c0", {i}, {i}, b.load(in, {i}));
  b.computation("c1", {i2}, {i2}, b.load(in, {i2}));
  const Program p = b.build();
  EXPECT_EQ(p.roots.size(), 2u);
}

TEST(Builder, NewRootForcesSeparateNestDespiteSharedVars) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4), j = b.var("j", 8);
  const int in = b.input("in", {4, 8});
  b.computation("c0", {i, j}, {i, j}, b.load(in, {i, j}));
  EXPECT_EQ(b.num_roots(), 1);
  b.new_root();
  b.computation("c1", {i, j}, {i, j}, b.load(in, {i, j}) * 2.0);
  EXPECT_EQ(b.num_roots(), 2);
  const Program p = b.build();
  EXPECT_EQ(p.roots.size(), 2u);
  EXPECT_NE(p.nest_of(0)[0], p.nest_of(1)[0]);
  EXPECT_EQ(p.validate(), std::nullopt);
}

TEST(Builder, ReductionDetection) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4), k = b.var("k", 8);
  const int in = b.input("in", {4, 8});
  const int c = b.computation("dot", {i, k}, {i}, b.load(in, {i, k}));
  const Program p = b.build();
  EXPECT_TRUE(p.comp(c).is_reduction);
  EXPECT_FALSE(p.is_reduction_level(c, 0));
  EXPECT_TRUE(p.is_reduction_level(c, 1));
}

TEST(Builder, StoreVarsMustBeSubsequence) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4), j = b.var("j", 4);
  const int in = b.input("in", {4, 4});
  EXPECT_THROW(b.computation("c", {i, j}, {j, i}, b.load(in, {i, j})), std::invalid_argument);
}

TEST(Builder, DuplicateIteratorRejected) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4);
  const int in = b.input("in", {4});
  EXPECT_THROW(b.computation("c", {i, i}, {i}, b.load(in, {i})), std::invalid_argument);
}

TEST(Builder, OutOfBoundsLoadRejectedAtBuild) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4);
  const int in = b.input("in", {4});
  b.computation("c", {i}, {i}, b.load(in, {i + 1}));  // reads in[4]
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(Builder, ForeignVariableInAccessRejected) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4), j = b.var("j", 4);
  const int in = b.input("in", {4});
  EXPECT_THROW(b.computation("c", {i}, {i}, b.load(in, {j})), std::invalid_argument);
}

TEST(Builder, LoadArityChecked) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4);
  const int in = b.input("in", {4, 4});
  EXPECT_THROW(b.load(in, {i}), std::invalid_argument);
}

TEST(Builder, ComputationIntoAccumulatesExistingBuffer) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4), j = b.var("j", 8);
  const int in = b.input("in", {4, 8});
  int buf = -1;
  b.computation("first", {i, j}, {i}, b.load(in, {i, j}), &buf);
  Var i2 = b.var("i2", 4), j2 = b.var("j2", 8);
  b.computation_into(buf, "second", {i2, j2}, {i2}, b.load(in, {i2, j2}));
  const Program p = b.build();
  EXPECT_EQ(p.comp(0).store.buffer_id, p.comp(1).store.buffer_id);
}

TEST(Builder, ComputationIntoInputBufferRejected) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4);
  const int in = b.input("in", {4});
  EXPECT_THROW(b.computation_into(in, "c", {i}, {i}, b.load(in, {i})), std::invalid_argument);
}

TEST(Builder, BuildTwiceThrows) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4);
  const int in = b.input("in", {4});
  b.computation("c", {i}, {i}, b.load(in, {i}));
  b.build();
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(Program, CompsInOrderFollowsTree) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4), j = b.var("j", 4);
  const int in = b.input("in", {4, 4});
  b.computation("c0", {i, j}, {i, j}, b.load(in, {i, j}));
  b.computation("c1", {i}, {i}, b.load(in, {i, i}));  // shares loop i, after c0's j loop
  Var k = b.var("k", 4);
  b.computation("c2", {k}, {k}, b.load(in, {k, k}));
  const Program p = b.build();
  EXPECT_EQ(p.comps_in_order(), (std::vector<int>{0, 1, 2}));
}

TEST(Program, IterationCount) {
  ProgramBuilder b("t");
  Var i = b.var("i", 6), j = b.var("j", 10);
  const int in = b.input("in", {6, 10});
  const int c = b.computation("c", {i, j}, {i, j}, b.load(in, {i, j}));
  const Program p = b.build();
  EXPECT_EQ(p.iteration_count(c), 60);
}

TEST(Program, ValidateDetectsCycleFreeInvariants) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4);
  const int in = b.input("in", {4});
  b.computation("c", {i}, {i}, b.load(in, {i}));
  Program p = b.build();
  // Corrupt: computation pointing to a wrong loop.
  p.comps[0].loop_id = -1;
  EXPECT_NE(p.validate(), std::nullopt);
}

TEST(Program, ToStringMentionsLoopsAndComputation) {
  ProgramBuilder b("prog");
  Var i = b.var("i", 4);
  const int in = b.input("in", {4});
  b.computation("c", {i}, {i}, b.load(in, {i}) * 2.0);
  const Program p = b.build();
  const std::string s = p.to_string();
  EXPECT_NE(s.find("for i in 0..4"), std::string::npos);
  EXPECT_NE(s.find("// c"), std::string::npos);
}

TEST(Program, BufferQueriesThrowOnBadIds) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4);
  const int in = b.input("in", {4});
  b.computation("c", {i}, {i}, b.load(in, {i}));
  const Program p = b.build();
  EXPECT_THROW(p.buffer(99), std::out_of_range);
  EXPECT_THROW(p.comp(99), std::out_of_range);
  EXPECT_THROW(p.loop(99), std::out_of_range);
}

TEST(Buffer, NumElements) {
  Buffer b;
  b.dims = {3, 4, 5};
  EXPECT_EQ(b.num_elements(), 60);
  EXPECT_EQ(b.rank(), 3);
}

}  // namespace
}  // namespace tcm::ir
