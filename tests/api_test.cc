// Tests for the tcm::api façade layer (src/api/): the Status/Result error
// model, the dependency-free JSON codec, the v1 wire encodings of programs
// and schedules, and the Service façade semantics — no exception ever
// crosses the boundary, corrupt checkpoints surface as statuses while the
// incumbent keeps serving, and the measured-feedback reservoir survives
// restarts without double-counting.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "api/json.h"
#include "api/metrics.h"
#include "api/service.h"
#include "api/status.h"
#include "api/wire.h"
#include "datagen/generator.h"
#include "ir/builder.h"
#include "model/cost_model.h"
#include "model/featurize.h"
#include "registry/model_registry.h"
#include "serve/prediction_service.h"
#include "transforms/apply.h"

namespace fs = std::filesystem;

namespace tcm::api {
namespace {

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("tcm_api_" + name);
  fs::remove_all(dir);
  return dir.string();
}

ir::Program test_program(std::uint64_t seed = 0) {
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  return gen.generate(seed);
}

// Registers an untrained fast-config CostModel as v1 (+ optional extra
// versions) and promotes v1; weights are random but deterministic per seed,
// which is all the façade semantics need.
std::string make_registry(const std::string& name, int versions = 1) {
  const std::string root = scratch_dir(name);
  registry::ModelRegistry reg(root);
  for (int v = 0; v < versions; ++v) {
    Rng rng(100 + static_cast<std::uint64_t>(v));
    model::CostModel m(model::ModelConfig::fast(), rng);
    registry::ModelManifest manifest;
    manifest.config = model::ModelConfig::fast();
    manifest.provenance = "api_test v" + std::to_string(v + 1);
    reg.register_version(m, manifest);
  }
  reg.promote(1);
  return root;
}

ServiceOptions fast_options(const std::string& root) {
  ServiceOptions opt;
  opt.registry_root = root;
  opt.serve.num_threads = 2;
  opt.serve.features = model::FeatureConfig::fast();
  opt.serve.max_queue_latency = std::chrono::microseconds(200);
  return opt;
}

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(Status, CodesMapToHttpAndNames) {
  EXPECT_TRUE(Status().ok());
  EXPECT_EQ(http_status(StatusCode::kOk), 200);
  EXPECT_EQ(http_status(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(http_status(StatusCode::kNotFound), 404);
  EXPECT_EQ(http_status(StatusCode::kFailedPrecondition), 409);
  EXPECT_EQ(http_status(StatusCode::kResourceExhausted), 429);
  EXPECT_EQ(http_status(StatusCode::kDeadlineExceeded), 504);
  EXPECT_EQ(http_status(StatusCode::kUnavailable), 503);
  EXPECT_EQ(http_status(StatusCode::kInternal), 500);
  EXPECT_EQ(status_code_name(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_EQ(Status::not_found("x").to_string(), "NOT_FOUND: x");
}

TEST(Status, ExceptionMapping) {
  EXPECT_EQ(status_from_exception(std::invalid_argument("a")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(status_from_exception(std::runtime_error("b")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(status_from_exception(std::logic_error("c")).code(), StatusCode::kInternal);
}

TEST(Result, ValueAndError) {
  Result<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  Result<int> bad(Status::not_found("missing"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(Json, ParseScalarsAndStructure) {
  Result<Json> doc = Json::parse(R"({"a":1,"b":-2.5,"c":[true,false,null],"d":{"e":"hi"}})");
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  EXPECT_TRUE(doc->find("a")->is_int());
  EXPECT_EQ(doc->find("a")->as_int(), 1);
  EXPECT_DOUBLE_EQ(doc->find("b")->as_double(), -2.5);
  EXPECT_EQ(doc->find("c")->as_array().size(), 3u);
  EXPECT_EQ(doc->find("d")->find("e")->as_string(), "hi");
}

TEST(Json, RoundTripsStringsWithEscapes) {
  Json j = Json(std::string("line\nquote\"back\\slash\ttab\x01"));
  Result<Json> back = Json::parse(j.dump());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->as_string(), j.as_string());
  // \u escapes (incl. a surrogate pair) decode to UTF-8.
  Result<Json> uni = Json::parse(R"("\u0041\u00e9\ud83d\ude00")");
  ASSERT_TRUE(uni.ok());
  EXPECT_EQ(uni->as_string(), "A\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(Json, DoublesRoundTripBitwise) {
  for (double v : {0.0, 1.0, -1.0, 0.1, 1.0 / 3.0, 1e-300, 6.62607015e-34, 12345.6789}) {
    Result<Json> back = Json::parse(Json(v).dump());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->as_double(), v);  // exact, not near
  }
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1.2.3", "\"unterminated", "{}extra",
        "[01]", "\"\\q\"", "nul", "--1", "+1", "0x10", "[1,]", "{\"a\":1,}"}) {
    Result<Json> doc = Json::parse(bad);
    EXPECT_FALSE(doc.ok()) << "accepted: " << bad;
    if (!doc.ok()) EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(Json, EnforcesDepthLimit) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_FALSE(Json::parse(deep, /*max_depth=*/64).ok());
  EXPECT_TRUE(Json::parse(deep, /*max_depth=*/128).ok());
}

// ---------------------------------------------------------------------------
// Wire codecs
// ---------------------------------------------------------------------------

TEST(Wire, ProgramRoundTripsThroughJson) {
  datagen::RandomScheduleGenerator sgen;
  Rng rng(11);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const ir::Program original = test_program(seed);
    Result<Json> parsed = Json::parse(to_json(original).dump());
    ASSERT_TRUE(parsed.ok());
    Result<ir::Program> back = program_from_json(*parsed);
    ASSERT_TRUE(back.ok()) << back.status().to_string();
    // Pseudo-code rendering covers names, structure, accesses, annotations.
    EXPECT_EQ(back->to_string(), original.to_string());
    // And the decoded program featurizes identically under a real schedule.
    const transforms::Schedule sched = sgen.generate(original, rng);
    auto f1 = model::featurize(original, sched, model::FeatureConfig::fast());
    auto f2 = model::featurize(*back, sched, model::FeatureConfig::fast());
    ASSERT_TRUE(f1.has_value());
    ASSERT_TRUE(f2.has_value());
    ASSERT_EQ(f1->comp_vectors.size(), f2->comp_vectors.size());
    for (std::size_t i = 0; i < f1->comp_vectors.size(); ++i)
      EXPECT_EQ(f1->comp_vectors[i], f2->comp_vectors[i]);
  }
}

TEST(Wire, ScheduleRoundTripsThroughJson) {
  datagen::RandomScheduleGenerator sgen;
  Rng rng(5);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const ir::Program p = test_program(seed);
    const transforms::Schedule original = sgen.generate(p, rng);
    Result<Json> parsed = Json::parse(to_json(original).dump());
    ASSERT_TRUE(parsed.ok());
    Result<transforms::Schedule> back = schedule_from_json(*parsed);
    ASSERT_TRUE(back.ok()) << back.status().to_string();
    EXPECT_EQ(*back, original);
  }
}

TEST(Wire, SkewedMultiRootProgramRoundTripsAndFeaturizesBitwise) {
  // A two-root program plus a schedule exercising the LOOPer-class space:
  // skew + wavefront interchange on one computation, a unimodular transform
  // on the other. Both the base program and its transformed form (whose
  // loops carry skew_of / skew_is_sum / tags) must survive the wire.
  ir::ProgramBuilder b("skewed");
  ir::Var i = b.var("i", 8), j = b.var("j", 10);
  const int in = b.input("in", {8, 10});
  b.computation("c0", {i, j}, {i, j}, b.load(in, {i, j}) * 2.0);
  b.new_root();
  ir::Var i2 = b.var("i2", 8), j2 = b.var("j2", 10);
  b.computation("c1", {i2, j2}, {i2, j2}, b.load(in, {i2, j2}) + 1.0);
  const ir::Program original = b.build();
  ASSERT_EQ(original.roots.size(), 2u);

  transforms::Schedule sched;
  sched.skews.push_back({0, 0, 2});
  sched.interchanges.push_back({0, 0, 1});
  sched.unimodulars.push_back({1, 0, {0, 1, 1, 0}});
  ASSERT_TRUE(transforms::is_legal(original, sched));

  // Schedule specs survive the wire verbatim.
  Result<Json> sj = Json::parse(to_json(sched).dump());
  ASSERT_TRUE(sj.ok());
  Result<transforms::Schedule> sched_back = schedule_from_json(*sj);
  ASSERT_TRUE(sched_back.ok()) << sched_back.status().to_string();
  EXPECT_EQ(*sched_back, sched);

  // Base program + decoded schedule featurize bitwise-identically.
  Result<Json> pj = Json::parse(to_json(original).dump());
  ASSERT_TRUE(pj.ok());
  Result<ir::Program> back = program_from_json(*pj);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back->to_string(), original.to_string());
  auto f1 = model::featurize(original, sched, model::FeatureConfig::fast());
  auto f2 = model::featurize(*back, *sched_back, model::FeatureConfig::fast());
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  ASSERT_EQ(f1->comp_vectors.size(), f2->comp_vectors.size());
  for (std::size_t k = 0; k < f1->comp_vectors.size(); ++k)
    EXPECT_EQ(f1->comp_vectors[k], f2->comp_vectors[k]);

  // The transformed program carries skew loop fields; they round-trip too.
  const ir::Program transformed = transforms::apply_schedule(original, sched);
  Result<Json> tj = Json::parse(to_json(transformed).dump());
  ASSERT_TRUE(tj.ok());
  Result<ir::Program> tback = program_from_json(*tj);
  ASSERT_TRUE(tback.ok()) << tback.status().to_string();
  EXPECT_EQ(tback->to_string(), transformed.to_string());
  const auto nest = tback->nest_of(0);
  EXPECT_TRUE(tback->loop(nest[0]).skew_is_sum);
  EXPECT_EQ(tback->loop(nest[0]).skew_of, tback->loop(nest[1]).id);
  EXPECT_TRUE(tback->loop(nest[1]).tag_skewed);
}

TEST(Wire, MalformedSkewAndUnimodularSpecsRejected) {
  auto parse_schedule = [](const char* text) {
    Result<Json> doc = Json::parse(text);
    EXPECT_TRUE(doc.ok());
    return schedule_from_json(*doc);
  };
  // Skew without a factor.
  Result<transforms::Schedule> r1 = parse_schedule(R"({"skew":[{"comp":0,"level":0}]})");
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);
  // Unimodular with a coeff count that is not 4 or 9.
  Result<transforms::Schedule> r2 =
      parse_schedule(R"({"unimodular":[{"comp":0,"level":0,"coeffs":[1,0,0]}]})");
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
  // Non-integer coefficients.
  Result<transforms::Schedule> r3 =
      parse_schedule(R"({"unimodular":[{"comp":0,"level":0,"coeffs":[1,0,0,"x"]}]})");
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);
  // Well-formed specs still decode.
  EXPECT_TRUE(parse_schedule(R"({"skew":[{"comp":0,"level":1,"factor":2}]})").ok());
}

TEST(Wire, RejectsInvalidPrograms) {
  // Structurally broken: comp store access out of buffer bounds.
  Result<Json> doc = Json::parse(R"({
    "buffers":[{"name":"A","dims":[4]}],
    "loops":[{"iter":"i","extent":8,"parent":-1,"body":[["comp",0]]}],
    "comps":[{"name":"c0","store":{"buffer":0,"depth":1,"rows":[[1,0]]},
              "rhs":{"const":1}}],
    "roots":[0]})");
  ASSERT_TRUE(doc.ok());
  Result<ir::Program> program = program_from_json(*doc);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kInvalidArgument);

  // Referentially broken: body points at a comp that does not exist.
  Result<Json> doc2 = Json::parse(R"({
    "buffers":[{"name":"A","dims":[4]}],
    "loops":[{"iter":"i","extent":4,"parent":-1,"body":[["comp",3]]}],
    "comps":[],
    "roots":[0]})");
  ASSERT_TRUE(doc2.ok());
  EXPECT_FALSE(program_from_json(*doc2).ok());
}

TEST(Wire, PredictRequestValidation) {
  const ir::Program p = test_program(1);
  Json body = Json::object();
  body.set("program", to_json(p));
  body.set("schedule", to_json(transforms::Schedule{}));
  ASSERT_TRUE(predict_request_from_json(body).ok());

  Json both = body;
  both.set("schedules", Json::array());
  EXPECT_FALSE(predict_request_from_json(both).ok());  // schedule AND schedules

  Json neither = Json::object();
  neither.set("program", to_json(p));
  EXPECT_FALSE(predict_request_from_json(neither).ok());

  Json wrong_version = body;
  wrong_version.set("api_version", Json(static_cast<std::int64_t>(2)));
  Result<PredictRequest> rejected = predict_request_from_json(wrong_version);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(Wire, ErrorBodyShape) {
  const Json body = error_body(Status::not_found("nope"));
  const Json* err = body.find("error");
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->find("code")->as_string(), "NOT_FOUND");
  EXPECT_EQ(err->find("http")->as_int(), 404);
  EXPECT_EQ(err->find("message")->as_string(), "nope");
}

// ---------------------------------------------------------------------------
// Service façade
// ---------------------------------------------------------------------------

TEST(Service, OpenFailsCleanlyOnEmptyRegistry) {
  Result<std::unique_ptr<Service>> svc = Service::open(fast_options(scratch_dir("empty")));
  ASSERT_FALSE(svc.ok());
  EXPECT_EQ(svc.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Service, OpenFailsCleanlyOnFeatureMismatch) {
  const std::string root = make_registry("feat_mismatch");
  ServiceOptions opt = fast_options(root);
  opt.serve.features = model::FeatureConfig::paper();  // != manifest hash
  Result<std::unique_ptr<Service>> svc = Service::open(std::move(opt));
  ASSERT_FALSE(svc.ok());
  EXPECT_EQ(svc.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Service, PredictMatchesInProcessFuturesBitwise) {
  const std::string root = make_registry("parity");
  Result<std::unique_ptr<Service>> svc = Service::open(fast_options(root));
  ASSERT_TRUE(svc.ok()) << svc.status().to_string();

  datagen::RandomScheduleGenerator sgen;
  Rng rng(7);
  PredictRequest request;
  request.program = test_program(2);
  for (int i = 0; i < 12; ++i) request.schedules.push_back(sgen.generate(request.program, rng));

  Result<PredictResponse> response = (*svc)->predict(request);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  ASSERT_EQ(response->predictions.size(), request.schedules.size());

  // The same pairs through the raw in-process futures API must agree
  // bitwise (inference is deterministic and batch-composition invariant).
  serve::PredictionService& raw = (*svc)->raw_service();
  std::vector<std::future<serve::Prediction>> futures;
  for (const transforms::Schedule& s : request.schedules)
    futures.push_back(raw.submit(request.program, s));
  raw.flush();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const serve::Prediction direct = futures[i].get();
    EXPECT_EQ(response->predictions[i].speedup, direct.speedup) << "row " << i;
    EXPECT_EQ(response->predictions[i].model_version, direct.model_version);
  }
}

TEST(Service, PredictServesSkewedMultiRootProgramEndToEnd) {
  // The expanded-space end-to-end path: a multi-root program with a skew +
  // wavefront interchange on one root and a unimodular transform on the
  // other goes through the wire decode, featurization and fused inference,
  // and comes back as a finite positive speedup.
  const std::string root = make_registry("skewed_e2e");
  Result<std::unique_ptr<Service>> svc = Service::open(fast_options(root));
  ASSERT_TRUE(svc.ok()) << svc.status().to_string();

  ir::ProgramBuilder b("wave");
  ir::Var i = b.var("i", 16), j = b.var("j", 16);
  const int in = b.input("in", {16, 16});
  const int c0 = b.computation("c0", {i, j}, {i, j}, b.load(in, {i, j}) * 2.0, nullptr);
  b.new_root();
  ir::Var i2 = b.var("i2", 16), j2 = b.var("j2", 16);
  b.computation("c1", {i2, j2}, {i2, j2}, b.load(b.buffer_of(c0), {i2, j2}) + 1.0);
  const ir::Program program = b.build();
  ASSERT_EQ(program.roots.size(), 2u);

  transforms::Schedule sched;
  sched.skews.push_back({0, 0, 1});
  sched.interchanges.push_back({0, 0, 1});
  sched.unimodulars.push_back({1, 0, {0, 1, 1, 0}});
  ASSERT_TRUE(transforms::is_legal(program, sched));

  // Through the JSON wire, exactly as an HTTP /v1/predict request arrives.
  Json body = Json::object();
  body.set("program", to_json(program));
  body.set("schedule", to_json(sched));
  Result<Json> parsed = Json::parse(body.dump());
  ASSERT_TRUE(parsed.ok());
  Result<PredictRequest> request = predict_request_from_json(*parsed);
  ASSERT_TRUE(request.ok()) << request.status().to_string();

  Result<PredictResponse> response = (*svc)->predict(*request);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  ASSERT_EQ(response->predictions.size(), 1u);
  EXPECT_GT(response->predictions[0].speedup, 0.0);
  EXPECT_EQ(response->predictions[0].model_version, 1);
}

TEST(Service, PredictRejectsBadRequestsWithoutDying) {
  const std::string root = make_registry("bad_requests");
  Result<std::unique_ptr<Service>> svc = Service::open(fast_options(root));
  ASSERT_TRUE(svc.ok());

  PredictRequest no_schedules;
  no_schedules.program = test_program(0);
  EXPECT_EQ((*svc)->predict(no_schedules).status().code(), StatusCode::kInvalidArgument);

  // A program over the featurization depth limit is structurally valid but
  // fails featurization on the serving path; the façade must hand back
  // INVALID_ARGUMENT, not die. (Built by hand: the random generator clamps
  // depth to its iteration budget.)
  const int depth = model::FeatureConfig::fast().max_depth + 1;
  ir::Program over_deep;
  ir::Buffer buf;
  buf.name = "A";
  buf.dims = {2};
  over_deep.add_buffer(buf);
  for (int d = 0; d < depth; ++d) {
    ir::LoopNode loop;
    loop.iter = {"i" + std::to_string(d), 2};
    loop.parent = d - 1;
    over_deep.add_loop(loop);
    if (d > 0) over_deep.loops[static_cast<std::size_t>(d - 1)].body.push_back(
        ir::BodyItem::loop(d));
  }
  ir::Computation comp;
  comp.name = "c0";
  comp.store.buffer_id = 0;
  comp.store.matrix = ir::AccessMatrix(1, depth);
  comp.store.matrix.set(0, 0, 1);
  comp.rhs = ir::Expr::constant(1.0);
  comp.loop_id = depth - 1;
  over_deep.add_computation(comp);
  over_deep.loops.back().body.push_back(ir::BodyItem::computation(0));
  over_deep.roots = {0};
  ASSERT_FALSE(over_deep.validate().has_value());
  PredictRequest too_deep;
  too_deep.program = over_deep;
  too_deep.schedules.emplace_back();
  Result<PredictResponse> rejected = (*svc)->predict(too_deep);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  // The service still serves after both rejections.
  PredictRequest good;
  good.program = test_program(0);
  good.schedules.emplace_back();
  EXPECT_TRUE((*svc)->predict(good).ok());
}

TEST(Service, PromoteRollbackLifecycle) {
  const std::string root = make_registry("lifecycle", /*versions=*/2);
  Result<std::unique_ptr<Service>> svc = Service::open(fast_options(root));
  ASSERT_TRUE(svc.ok());
  EXPECT_EQ((*svc)->active_version(), 1);

  EXPECT_EQ((*svc)->promote(99).code(), StatusCode::kNotFound);
  ASSERT_TRUE((*svc)->promote(2).ok());
  EXPECT_EQ((*svc)->active_version(), 2);

  Result<std::vector<ModelInfo>> models = (*svc)->models();
  ASSERT_TRUE(models.ok());
  ASSERT_EQ(models->size(), 2u);
  EXPECT_TRUE((*models)[1].active);
  EXPECT_TRUE((*models)[0].previous);

  Result<int> restored = (*svc)->rollback();
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, 1);
  EXPECT_EQ((*svc)->active_version(), 1);
}

TEST(Service, RollbackWithoutPreviousFails) {
  const std::string root = make_registry("no_rollback");
  Result<std::unique_ptr<Service>> svc = Service::open(fast_options(root));
  ASSERT_TRUE(svc.ok());
  Result<int> restored = (*svc)->rollback();
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kFailedPrecondition);
}

// The satellite regression test: a corrupt checkpoint must surface as a
// Status through the façade — never an escaped exception, never a dead
// daemon — and the incumbent must keep serving.
TEST(Service, TamperedCheckpointPromotionIsRejectedAndServingSurvives) {
  const std::string root = make_registry("tampered", /*versions=*/2);
  {
    // Corrupt v2's weights on disk: truncate to half (a torn write — the
    // corruption load_parameters detects structurally; manifest-hash
    // tampering is covered by registry_test).
    registry::ModelRegistry reg(root);
    const std::string path = reg.weights_path(2);
    const auto size = fs::file_size(path);
    fs::resize_file(path, size / 2);
  }
  Result<std::unique_ptr<Service>> svc = Service::open(fast_options(root));
  ASSERT_TRUE(svc.ok());

  const Status promoted = (*svc)->promote(2);
  ASSERT_FALSE(promoted.ok());
  EXPECT_EQ(promoted.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*svc)->active_version(), 1);  // incumbent untouched

  PredictRequest request;
  request.program = test_program(3);
  request.schedules.emplace_back();
  Result<PredictResponse> response = (*svc)->predict(request);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response->predictions[0].model_version, 1);
}

// Same contract for corruption that keeps the file structurally valid: a
// single flipped bit in the float payload is invisible to shape checks and
// only the weights checksum catches it.
TEST(Service, BitFlippedCheckpointPromotionIsRejected) {
  const std::string root = make_registry("bitflip", /*versions=*/2);
  {
    registry::ModelRegistry reg(root);
    const std::string path = reg.weights_path(2);
    const auto size = fs::file_size(path);
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size - 8));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(static_cast<std::streamoff>(size - 8));
    f.write(&byte, 1);
  }
  Result<std::unique_ptr<Service>> svc = Service::open(fast_options(root));
  ASSERT_TRUE(svc.ok());
  const Status promoted = (*svc)->promote(2);
  ASSERT_FALSE(promoted.ok());
  EXPECT_EQ(promoted.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*svc)->active_version(), 1);
}

TEST(Service, StatsAndMetricsExposition) {
  const std::string root = make_registry("stats");
  Result<std::unique_ptr<Service>> svc = Service::open(fast_options(root));
  ASSERT_TRUE(svc.ok());

  PredictRequest request;
  request.program = test_program(4);
  datagen::RandomScheduleGenerator sgen;
  Rng rng(9);
  for (int i = 0; i < 6; ++i) request.schedules.push_back(sgen.generate(request.program, rng));
  ASSERT_TRUE((*svc)->predict(request).ok());
  ASSERT_TRUE((*svc)->quiesce().ok());

  const StatsSnapshot stats = (*svc)->stats();
  EXPECT_EQ(stats.serve.requests, 6u);
  EXPECT_EQ(stats.active_version, 1);
  EXPECT_TRUE(stats.feedback.enabled);
  EXPECT_EQ(stats.feedback.offered, 6u);

  // The JSON encoding parses back and carries the same counters.
  Result<Json> parsed = Json::parse(to_json(stats).dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->find("serve")->find("requests")->as_int(), 6);

  // The Prometheus exposition carries the scheduler/drift/feedback series
  // (the former stdout logging path) in valid text format.
  const std::string text = prometheus_text(stats, (*svc)->metrics().get());
  EXPECT_NE(text.find("tcm_serve_requests_total 6\n"), std::string::npos);
  EXPECT_NE(text.find("tcm_model_active_version 1\n"), std::string::npos);
  EXPECT_NE(text.find("tcm_drift_signal{signal=\"psi\"}"), std::string::npos);
  EXPECT_NE(text.find("tcm_autopilot_cycles_total"), std::string::npos);
  EXPECT_NE(text.find("tcm_feedback_offered_total 6\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tcm_http_requests_total counter\n"), std::string::npos);
  // The serving histograms render from the shared registry: e2e latency plus
  // the per-stage family, with cumulative buckets and matching _count.
  EXPECT_NE(text.find("# TYPE tcm_serve_latency_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("tcm_serve_latency_seconds_count 6\n"), std::string::npos);
  EXPECT_NE(text.find("tcm_stage_duration_seconds_bucket{stage=\"infer\",le=\"+Inf\"}"),
            std::string::npos);
  // Every non-comment line is "name[{labels}] value".
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

TEST(Service, UnavailableAfterShutdown) {
  const std::string root = make_registry("shutdown");
  Result<std::unique_ptr<Service>> svc = Service::open(fast_options(root));
  ASSERT_TRUE(svc.ok());
  (*svc)->shutdown();
  PredictRequest request;
  request.program = test_program(0);
  request.schedules.emplace_back();
  EXPECT_EQ((*svc)->predict(request).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ((*svc)->healthy().code(), StatusCode::kUnavailable);
  (*svc)->shutdown();  // idempotent
}

// ---------------------------------------------------------------------------
// Feedback persistence across restarts
// ---------------------------------------------------------------------------

TEST(Service, FeedbackReservoirSurvivesRestart) {
  const std::string root = make_registry("feedback_persist");
  ServiceOptions opt = fast_options(root);
  opt.feedback.capacity = 64;
  opt.feedback.sample_fraction = 1.0;  // keep everything: deterministic test

  datagen::RandomScheduleGenerator sgen;
  Rng rng(13);
  std::size_t buffered_before = 0;
  {
    Result<std::unique_ptr<Service>> svc = Service::open(opt);
    ASSERT_TRUE(svc.ok());
    PredictRequest request;
    request.program = test_program(6);
    for (int i = 0; i < 10; ++i) request.schedules.push_back(sgen.generate(request.program, rng));
    ASSERT_TRUE((*svc)->predict(request).ok());
    buffered_before = (*svc)->stats().feedback.buffered;
    (*svc)->shutdown();  // persists the reservoir
  }
  ASSERT_GT(buffered_before, 0u);
  ASSERT_TRUE(fs::exists(root + "/feedback.json"));

  {
    Result<std::unique_ptr<Service>> svc = Service::open(opt);
    ASSERT_TRUE(svc.ok());
    // The reservoir came back, and the restored samples are real programs:
    // they re-featurize under the serving config.
    EXPECT_EQ((*svc)->stats().feedback.buffered, buffered_before);
    // Counters stay consistent across the restore: sampled never exceeds
    // offered (the /metrics ratio must remain <= 1).
    EXPECT_LE((*svc)->stats().feedback.sampled, (*svc)->stats().feedback.offered);
    for (const serve::ServedSample& s : (*svc)->feedback_buffer()->snapshot())
      EXPECT_TRUE(model::featurize(s.program, s.schedule, opt.serve.features).has_value());
    // The snapshot file was consumed: a crash right now cannot double-load.
    EXPECT_FALSE(fs::exists(root + "/feedback.json"));
  }
}

TEST(Service, CorruptFeedbackSnapshotIsDiscardedNotFatal) {
  const std::string root = make_registry("feedback_corrupt");
  {
    std::ofstream f(root + "/feedback.json", std::ios::trunc);
    f << "{ this is not json";
  }
  Result<std::unique_ptr<Service>> svc = Service::open(fast_options(root));
  ASSERT_TRUE(svc.ok()) << svc.status().to_string();
  EXPECT_EQ((*svc)->stats().feedback.buffered, 0u);
  EXPECT_FALSE(fs::exists(root + "/feedback.json"));  // consumed either way
}

TEST(Service, DrainedFeedbackNeverDoubleCounted) {
  const std::string root = make_registry("feedback_drain");
  ServiceOptions opt = fast_options(root);
  opt.feedback.capacity = 64;
  opt.feedback.sample_fraction = 1.0;

  {
    Result<std::unique_ptr<Service>> svc = Service::open(opt);
    ASSERT_TRUE(svc.ok());
    datagen::RandomScheduleGenerator sgen;
    Rng rng(17);
    PredictRequest request;
    request.program = test_program(8);
    for (int i = 0; i < 8; ++i) request.schedules.push_back(sgen.generate(request.program, rng));
    ASSERT_TRUE((*svc)->predict(request).ok());
    ASSERT_GT((*svc)->stats().feedback.buffered, 0u);

    // A continual cycle drains the buffer (this is literally what
    // ContinualTrainer::run_cycle does); the drained samples now live in
    // the fine-tune pipeline, not the reservoir.
    const std::vector<serve::ServedSample> drained = (*svc)->feedback_buffer()->drain();
    EXPECT_EQ(drained.size(), 8u);
    (*svc)->shutdown();  // persists the post-drain (empty) reservoir
  }

  // The restart must restore nothing: drained samples are never
  // double-counted into a later cycle.
  Result<std::unique_ptr<Service>> again = Service::open(opt);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->stats().feedback.buffered, 0u);
}

}  // namespace
}  // namespace tcm::api
