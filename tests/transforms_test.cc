#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "ir/builder.h"
#include "sim/interpreter.h"
#include "transforms/apply.h"
#include "transforms/dependence.h"
#include "transforms/schedule.h"

namespace tcm::transforms {
namespace {

using ir::ProgramBuilder;
using ir::SExpr;
using ir::Var;

// A 3-deep single computation program: out[i][j] = in[i][j] + in[j][i] summed
// over k (matmul-flavoured when requested).
ir::Program simple2d(std::int64_t ni = 8, std::int64_t nj = 12) {
  ProgramBuilder b("p");
  Var i = b.var("i", ni), j = b.var("j", nj);
  const int in = b.input("in", {ni, nj});
  b.computation("c", {i, j}, {i, j}, b.load(in, {i, j}) * 2.0);
  return b.build();
}

ir::Program matmul3d(std::int64_t n = 8, std::int64_t m = 8, std::int64_t k = 8) {
  ProgramBuilder b("mm");
  Var i = b.var("i", n), j = b.var("j", m), kk = b.var("k", k);
  const int a = b.input("A", {n, k});
  const int bb = b.input("B", {k, m});
  b.computation("mm", {i, j, kk}, {i, j}, b.load(a, {i, kk}) * b.load(bb, {kk, j}));
  return b.build();
}

// Producer-consumer pair over matching 2-D domains.
ir::Program producer_consumer(std::int64_t n = 6, std::int64_t m = 10, int offset = 0) {
  ProgramBuilder b("pc");
  Var i = b.var("i", n), j = b.var("j", m);
  const int in = b.input("in", {n + 2, m});
  const int prod = b.computation("prod", {i, j}, {i, j}, b.load(in, {i + 2, j}));
  Var i2 = b.var("i2", n), j2 = b.var("j2", m);
  // offset < 0: reads earlier rows (backward, fusable); offset encoded via
  // reading prod[i2 + offset] requires offset <= 0 to stay in bounds from 0.
  ir::IndexExpr row = offset >= 0 ? ir::IndexExpr(i2) : i2 + offset;
  if (offset < 0) {
    // shift domain so accesses stay in bounds: consumer reads max(i2+offset,0)
    // -- instead, read prod[i2] and in the forward case use reversal below.
    row = i2;
  }
  b.computation("cons", {i2, j2}, {i2, j2}, b.load(b.buffer_of(prod), {row, j2}) + 1.0);
  return b.build();
}

// ---------------------------------------------------------------------------
// Schedule basics
// ---------------------------------------------------------------------------

TEST(Schedule, ToStringIdentity) {
  Schedule s;
  EXPECT_EQ(s.to_string(), "<identity>");
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(Schedule, ToStringRendersAll) {
  Schedule s;
  s.fusions.push_back({0, 1, 2});
  s.skews.push_back({0, 0, 2});
  s.unimodulars.push_back({0, 0, {0, 1, 1, 0}});
  s.interchanges.push_back({0, 0, 1});
  s.tiles.push_back({0, 0, {16, 32}});
  s.unrolls.push_back({0, 4});
  s.parallels.push_back({0, 0});
  s.vectorizes.push_back({0, 8});
  const std::string str = s.to_string();
  EXPECT_NE(str.find("fuse(c0,c1,depth=2)"), std::string::npos);
  EXPECT_NE(str.find("skew(c0,L0,L1,f=2)"), std::string::npos);
  EXPECT_NE(str.find("unimodular(c0,L0,"), std::string::npos);
  EXPECT_NE(str.find("interchange(c0,L0,L1)"), std::string::npos);
  EXPECT_NE(str.find("tile(c0,L0,16x32)"), std::string::npos);
  EXPECT_NE(str.find("unroll(c0,4)"), std::string::npos);
  EXPECT_NE(str.find("parallelize(c0,L0)"), std::string::npos);
  EXPECT_NE(str.find("vectorize(c0,8)"), std::string::npos);
  EXPECT_EQ(s.size(), 8u);
}

// ---------------------------------------------------------------------------
// Interchange
// ---------------------------------------------------------------------------

TEST(Interchange, SwapsExtentsAndAccesses) {
  const ir::Program p = simple2d(8, 12);
  Schedule s;
  s.interchanges.push_back({0, 0, 1});
  const ir::Program t = apply_schedule(p, s);
  EXPECT_EQ(t.extents_of(0), (std::vector<std::int64_t>{12, 8}));
  // in[i][j] became in[col1][col0]: coefficient of dim 0 moved to column 1.
  const auto loads = t.comp(0).rhs.loads();
  EXPECT_EQ(loads[0].matrix.at(0, 1), 1);
  EXPECT_EQ(loads[0].matrix.at(0, 0), 0);
  EXPECT_TRUE(t.loop(t.nest_of(0)[0]).tag_interchanged);
}

TEST(Interchange, IdenticalLevelsRejected) {
  const ir::Program p = simple2d();
  Schedule s;
  s.interchanges.push_back({0, 1, 1});
  std::string why;
  EXPECT_FALSE(is_legal(p, s, &why));
  EXPECT_NE(why.find("identical"), std::string::npos);
}

TEST(Interchange, OutOfRangeLevelRejected) {
  const ir::Program p = simple2d();
  Schedule s;
  s.interchanges.push_back({0, 0, 5});
  EXPECT_FALSE(is_legal(p, s));
}

TEST(Interchange, NonPerfectlyNestedRejected) {
  // Two computations under a shared outer loop: interchanging across the
  // branching level is rejected.
  ProgramBuilder b("t");
  Var i = b.var("i", 4), j = b.var("j", 4), k = b.var("k", 4);
  const int in = b.input("in", {4, 4});
  b.computation("c0", {i, j}, {i, j}, b.load(in, {i, j}));
  b.computation("c1", {i, k}, {i, k}, b.load(in, {i, k}));
  const ir::Program p = b.build();
  Schedule s;
  s.interchanges.push_back({0, 0, 1});
  std::string why;
  EXPECT_FALSE(is_legal(p, s, &why));
  EXPECT_NE(why.find("perfectly nested"), std::string::npos);
}

TEST(Interchange, UnknownComputationRejected) {
  const ir::Program p = simple2d();
  Schedule s;
  s.interchanges.push_back({7, 0, 1});
  EXPECT_FALSE(is_legal(p, s));
}

// ---------------------------------------------------------------------------
// Tiling
// ---------------------------------------------------------------------------

TEST(Tile, RestructuresLoops2D) {
  const ir::Program p = simple2d(8, 12);
  Schedule s;
  s.tiles.push_back({0, 0, {4, 4}});
  const ir::Program t = apply_schedule(p, s);
  const auto nest = t.nest_of(0);
  ASSERT_EQ(nest.size(), 4u);
  EXPECT_EQ(t.loop(nest[0]).iter.extent, 2);  // ceil(8/4)
  EXPECT_EQ(t.loop(nest[1]).iter.extent, 3);  // ceil(12/4)
  EXPECT_EQ(t.loop(nest[2]).iter.extent, 4);
  EXPECT_EQ(t.loop(nest[3]).iter.extent, 4);
  EXPECT_EQ(t.loop(nest[2]).tail_of, nest[0]);
  EXPECT_EQ(t.loop(nest[3]).tail_of, nest[1]);
  EXPECT_TRUE(t.loop(nest[0]).tag_tiled);
  EXPECT_EQ(t.loop(nest[0]).tag_tile_factor, 4);
  // Iteration count is preserved.
  EXPECT_EQ(t.iteration_count(0), p.iteration_count(0));
}

TEST(Tile, NonDivisibleSizesKeepIterationCount) {
  const ir::Program p = simple2d(10, 14);
  Schedule s;
  s.tiles.push_back({0, 0, {4, 8}});
  const ir::Program t = apply_schedule(p, s);
  EXPECT_EQ(t.iteration_count(0), 140);
  EXPECT_EQ(t.validate(), std::nullopt);
}

TEST(Tile, ThreeDimensional) {
  const ir::Program p = matmul3d(8, 8, 8);
  Schedule s;
  s.tiles.push_back({0, 0, {4, 4, 4}});
  const ir::Program t = apply_schedule(p, s);
  EXPECT_EQ(t.nest_of(0).size(), 6u);
  EXPECT_EQ(t.iteration_count(0), 512);
}

TEST(Tile, AccessMatrixRewritten) {
  const ir::Program p = matmul3d(8, 8, 8);
  Schedule s;
  s.tiles.push_back({0, 0, {4, 2}});
  const ir::Program t = apply_schedule(p, s);
  // A[i,k]: i = 4*io + ii -> coefficient 4 at col 0 (io), 1 at col 2 (ii).
  const auto loads = t.comp(0).rhs.loads();
  EXPECT_EQ(loads[0].matrix.at(0, 0), 4);
  EXPECT_EQ(loads[0].matrix.at(0, 2), 1);
  // k shifted right by 2: column 4.
  EXPECT_EQ(loads[0].matrix.at(1, 4), 1);
}

TEST(Tile, SizeLargerThanExtentRejected) {
  const ir::Program p = simple2d(8, 12);
  Schedule s;
  s.tiles.push_back({0, 0, {16, 4}});
  std::string why;
  EXPECT_FALSE(is_legal(p, s, &why));
  EXPECT_NE(why.find("exceeds extent"), std::string::npos);
}

TEST(Tile, DoubleTilingRejected) {
  const ir::Program p = matmul3d();
  Schedule s;
  s.tiles.push_back({0, 0, {4, 4}});
  s.tiles.push_back({0, 0, {2, 2}});
  EXPECT_FALSE(is_legal(p, s));
}

TEST(Tile, SizeOneRejected) {
  const ir::Program p = simple2d();
  Schedule s;
  s.tiles.push_back({0, 0, {1, 4}});
  EXPECT_FALSE(is_legal(p, s));
}

TEST(Tile, OneDimensionalRejected) {
  const ir::Program p = simple2d();
  Schedule s;
  s.tiles.push_back({0, 0, {4}});
  EXPECT_FALSE(is_legal(p, s));
}

// ---------------------------------------------------------------------------
// Unroll / Parallel / Vectorize
// ---------------------------------------------------------------------------

TEST(Unroll, AnnotatesInnermost) {
  const ir::Program p = simple2d();
  Schedule s;
  s.unrolls.push_back({0, 4});
  const ir::Program t = apply_schedule(p, s);
  EXPECT_EQ(t.loop(t.nest_of(0).back()).unroll, 4);
}

TEST(Unroll, FactorAboveExtentRejected) {
  const ir::Program p = simple2d(8, 4);
  Schedule s;
  s.unrolls.push_back({0, 8});
  EXPECT_FALSE(is_legal(p, s));
}

TEST(Unroll, DoubleUnrollRejected) {
  const ir::Program p = simple2d();
  Schedule s;
  s.unrolls.push_back({0, 2});
  s.unrolls.push_back({0, 4});
  EXPECT_FALSE(is_legal(p, s));
}

TEST(Parallelize, AnnotatesRequestedLevel) {
  const ir::Program p = simple2d();
  Schedule s;
  s.parallels.push_back({0, 0});
  const ir::Program t = apply_schedule(p, s);
  EXPECT_TRUE(t.loop(t.nest_of(0)[0]).parallel);
}

TEST(Parallelize, ReductionLevelRejected) {
  const ir::Program p = matmul3d();
  Schedule s;
  s.parallels.push_back({0, 2});  // k is the reduction level
  std::string why;
  EXPECT_FALSE(is_legal(p, s, &why));
  EXPECT_NE(why.find("reduction"), std::string::npos);
}

TEST(Parallelize, LevelMappedThroughTiling) {
  const ir::Program p = matmul3d(8, 8, 8);
  Schedule s;
  s.tiles.push_back({0, 0, {4, 4}});
  s.parallels.push_back({0, 0});  // pre-tiling level 0 -> outer tile loop
  const ir::Program t = apply_schedule(p, s);
  EXPECT_TRUE(t.loop(t.nest_of(0)[0]).parallel);
}

TEST(Vectorize, AnnotatesInnermost) {
  const ir::Program p = simple2d();
  Schedule s;
  s.vectorizes.push_back({0, 4});
  const ir::Program t = apply_schedule(p, s);
  EXPECT_EQ(t.loop(t.nest_of(0).back()).vector_width, 4);
}

TEST(Vectorize, NonPowerOfTwoRejected) {
  const ir::Program p = simple2d();
  Schedule s;
  s.vectorizes.push_back({0, 3});
  EXPECT_FALSE(is_legal(p, s));
}

TEST(Vectorize, WidthAboveExtentRejected) {
  const ir::Program p = simple2d(8, 4);
  Schedule s;
  s.vectorizes.push_back({0, 8});
  EXPECT_FALSE(is_legal(p, s));
}

// ---------------------------------------------------------------------------
// Fusion & dependences
// ---------------------------------------------------------------------------

TEST(Fusion, MergesAdjacentNests) {
  const ir::Program p = producer_consumer(6, 10);
  Schedule s;
  s.fusions.push_back({0, 1, 2});
  const ir::Program t = apply_schedule(p, s);
  EXPECT_EQ(t.roots.size(), 1u);
  EXPECT_EQ(t.nest_of(0), t.nest_of(1));  // fully shared nest
  EXPECT_TRUE(t.loop(t.roots[0]).tag_fused);
  EXPECT_EQ(t.validate(), std::nullopt);
}

TEST(Fusion, PartialDepth) {
  const ir::Program p = producer_consumer(6, 10);
  Schedule s;
  s.fusions.push_back({0, 1, 1});
  const ir::Program t = apply_schedule(p, s);
  EXPECT_EQ(t.roots.size(), 1u);
  // Only the outer loop is shared.
  EXPECT_EQ(t.nest_of(0)[0], t.nest_of(1)[0]);
  EXPECT_NE(t.nest_of(0)[1], t.nest_of(1)[1]);
}

TEST(Fusion, ExtentMismatchRejected) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4);
  const int in = b.input("in", {8});
  b.computation("c0", {i}, {i}, b.load(in, {i}));
  Var i2 = b.var("i2", 8);
  b.computation("c1", {i2}, {i2}, b.load(in, {i2}));
  const ir::Program p = b.build();
  Schedule s;
  s.fusions.push_back({0, 1, 1});
  std::string why;
  EXPECT_FALSE(is_legal(p, s, &why));
  EXPECT_NE(why.find("extent mismatch"), std::string::npos);
}

TEST(Fusion, ForwardDependenceRejected) {
  // Consumer reads reversed producer values: needs future iterations.
  ProgramBuilder b("t");
  Var i = b.var("i", 10);
  const int in = b.input("in", {10});
  const int prod = b.computation("prod", {i}, {i}, b.load(in, {i}));
  Var i2 = b.var("i2", 10);
  b.computation("cons", {i2}, {i2}, b.load(b.buffer_of(prod), {i2 * (-1) + 9}) + 1.0);
  const ir::Program p = b.build();
  Schedule s;
  s.fusions.push_back({0, 1, 1});
  std::string why;
  EXPECT_FALSE(is_legal(p, s, &why));
  EXPECT_NE(why.find("later iterations"), std::string::npos);
}

TEST(Fusion, ElementwiseAlignedAccepted) {
  const ir::Program p = producer_consumer();
  Schedule s;
  s.fusions.push_back({0, 1, 2});
  EXPECT_TRUE(is_legal(p, s));
}

TEST(Fusion, NonAdjacentRejected) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4), j = b.var("j", 4), k = b.var("k", 4);
  const int in = b.input("in", {4});
  b.computation("c0", {i}, {i}, b.load(in, {i}));
  b.computation("c1", {j}, {j}, b.load(in, {j}));
  b.computation("c2", {k}, {k}, b.load(in, {k}));
  const ir::Program p = b.build();
  Schedule s;
  s.fusions.push_back({0, 2, 1});  // skipping the middle nest
  EXPECT_FALSE(is_legal(p, s));
}

TEST(Fusion, ReductionProducerAtReductionDepthRejected) {
  // Producer reduces over k; fusing past the consumer-visible dims would
  // require partial sums.
  ProgramBuilder b("t");
  Var i = b.var("i", 4), k = b.var("k", 8);
  const int in = b.input("in", {4, 8});
  const int prod = b.computation("dot", {i, k}, {i}, b.load(in, {i, k}));
  Var i2 = b.var("i2", 4), k2 = b.var("k2", 8);
  b.computation("use", {i2, k2}, {i2, k2},
                b.load(b.buffer_of(prod), {i2}) + b.load(in, {i2, k2}));
  const ir::Program p = b.build();
  Schedule s1;
  s1.fusions.push_back({0, 1, 1});
  EXPECT_TRUE(is_legal(p, s1));  // fusing the i loop only is fine
  Schedule s2;
  s2.fusions.push_back({0, 1, 2});
  EXPECT_FALSE(is_legal(p, s2));  // fusing into the reduction is not
}

TEST(Dependence, CarriedDetectionAfterFusion) {
  const ir::Program p = producer_consumer();
  Schedule s;
  s.fusions.push_back({0, 1, 2});
  const ir::Program t = apply_schedule(p, s);
  // Aligned element-wise dependence: no level carries it.
  for (int loop_id : t.nest_of(0)) EXPECT_FALSE(level_carries_dependence(t, loop_id));
}

TEST(Dependence, ParallelizeFusedAlignedLoopAllowed) {
  const ir::Program p = producer_consumer();
  Schedule s;
  s.fusions.push_back({0, 1, 2});
  s.parallels.push_back({0, 0});
  EXPECT_TRUE(is_legal(p, s));
}

TEST(Dependence, ValueDifferenceRangeAligned) {
  ir::AccessMatrix store = ir::AccessMatrix::identity(2, 2);
  ir::AccessMatrix load = ir::AccessMatrix::identity(2, 2);
  const auto r =
      value_difference_range(store, 0, load, 2, std::vector<std::int64_t>{4, 4});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->min, 0);
  EXPECT_EQ(r->max, 0);
}

TEST(Dependence, ValueDifferenceRangeBackwardOffset) {
  ir::AccessMatrix store = ir::AccessMatrix::identity(1, 1);
  ir::AccessMatrix load(1, 1);
  load.set(0, 0, 1);
  load.set(0, 1, -1);  // reads x[i-1]
  const auto r = value_difference_range(store, 0, load, 1, std::vector<std::int64_t>{4});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->min, -1);
  EXPECT_EQ(r->max, -1);
}

TEST(Dependence, UnanalyzableWhenStoreUsesPrivateLoops) {
  ir::AccessMatrix store(1, 2);
  store.set(0, 0, 1);
  store.set(0, 1, 1);  // store depends on a producer-private loop (col 1)
  ir::AccessMatrix load = ir::AccessMatrix::identity(1, 1);
  EXPECT_FALSE(
      value_difference_range(store, 0, load, 1, std::vector<std::int64_t>{4}).has_value());
}

// ---------------------------------------------------------------------------
// Skewing & unimodular transforms (LOOPer-class space)
// ---------------------------------------------------------------------------

TEST(Skew, StructureTagsAndSemantics) {
  const ir::Program p = simple2d(8, 12);
  Schedule s;
  s.skews.push_back({0, 0, 2});
  const ir::Program t = apply_schedule(p, s);
  EXPECT_EQ(t.validate(), std::nullopt);
  const auto nest = t.nest_of(0);
  ASSERT_EQ(nest.size(), 2u);
  const ir::LoopNode& outer = t.loop(nest[0]);
  const ir::LoopNode& inner = t.loop(nest[1]);
  EXPECT_EQ(outer.skew_of, inner.id);
  EXPECT_EQ(inner.skew_of, outer.id);
  EXPECT_FALSE(outer.skew_is_sum);
  EXPECT_TRUE(inner.skew_is_sum);
  EXPECT_EQ(inner.skew_factor, 2);
  EXPECT_EQ(inner.iter.name, "i+j");
  EXPECT_TRUE(outer.tag_skewed);
  EXPECT_TRUE(inner.tag_skewed);
  EXPECT_EQ(inner.tag_skew_factor, 2);
  // Offset mode: the sum loop keeps the inner extent, iteration count holds.
  EXPECT_EQ(inner.iter.extent, 12);
  EXPECT_EQ(t.iteration_count(0), p.iteration_count(0));
  // Access rewrite: value = i*c_i + (t - 2*i)*c_j, so col 0 of in[i][j]'s
  // row 0 is unchanged (c_j = 0 there) and row 1 gets -2 at col 0.
  const auto loads = t.comp(0).rhs.loads();
  EXPECT_EQ(loads[0].matrix.at(0, 0), 1);
  EXPECT_EQ(loads[0].matrix.at(1, 0), -2);
  EXPECT_EQ(loads[0].matrix.at(1, 1), 1);
  const auto r0 = sim::Interpreter::execute(p, 1);
  const auto r1 = sim::Interpreter::execute(t, 1);
  EXPECT_LT(sim::Interpreter::max_rel_difference(p, r0, r1), 1e-9);
}

TEST(Skew, WavefrontInterchangeSemantics) {
  const ir::Program p = simple2d(8, 12);
  Schedule s;
  s.skews.push_back({0, 0, 2});
  s.interchanges.push_back({0, 0, 1});
  const ir::Program t = apply_schedule(p, s);
  EXPECT_EQ(t.validate(), std::nullopt);
  const auto nest = t.nest_of(0);
  ASSERT_EQ(nest.size(), 2u);
  const ir::LoopNode& sum = t.loop(nest[0]);
  const ir::LoopNode& part = t.loop(nest[1]);
  // Wave mode: the sum loop is outermost with extent M + f*(N-1), the
  // partner is windowed inside it; the point count is preserved.
  EXPECT_TRUE(t.is_wave_sum(sum));
  EXPECT_TRUE(sum.skew_is_sum);
  EXPECT_EQ(sum.iter.extent, 12 + 2 * (8 - 1));
  EXPECT_EQ(t.skew_orig_inner_extent(sum), 12);
  EXPECT_EQ(part.iter.extent, 8);
  EXPECT_EQ(t.iteration_count(0), p.iteration_count(0));
  const auto r0 = sim::Interpreter::execute(p, 2);
  const auto r1 = sim::Interpreter::execute(t, 2);
  EXPECT_LT(sim::Interpreter::max_rel_difference(p, r0, r1), 1e-9);
}

TEST(Skew, WavefrontOnDeepNestSemantics) {
  const ir::Program p = matmul3d(6, 7, 5);
  Schedule s;
  s.skews.push_back({0, 1, 1});  // skew (j, k)
  s.interchanges.push_back({0, 1, 2});
  const ir::Program t = apply_schedule(p, s);
  EXPECT_EQ(t.validate(), std::nullopt);
  EXPECT_EQ(t.iteration_count(0), p.iteration_count(0));
  const auto r0 = sim::Interpreter::execute(p, 3);
  const auto r1 = sim::Interpreter::execute(t, 3);
  EXPECT_LT(sim::Interpreter::max_rel_difference(p, r0, r1), 1e-9);
}

TEST(Skew, FactorOutOfRangeRejected) {
  const ir::Program p = simple2d();
  Schedule s0;
  s0.skews.push_back({0, 0, 0});
  EXPECT_FALSE(is_legal(p, s0));
  Schedule s1;
  s1.skews.push_back({0, 0, 17});
  EXPECT_FALSE(is_legal(p, s1));
}

TEST(Skew, DoubleSkewRejected) {
  const ir::Program p = matmul3d();
  Schedule s;
  s.skews.push_back({0, 0, 1});
  s.skews.push_back({0, 1, 1});  // level 1 is already half of the first pair
  std::string why;
  EXPECT_FALSE(is_legal(p, s, &why));
  EXPECT_NE(why.find("skew"), std::string::npos);
}

TEST(Skew, TiledLoopRejectedAndTileOfSkewedRejected) {
  const ir::Program p = simple2d(16, 16);
  Schedule tile_then_skew;
  tile_then_skew.tiles.push_back({0, 0, {4, 4}});
  tile_then_skew.skews.push_back({0, 0, 1});
  // Canonical order applies skews before tiles, so this is the tile ban.
  EXPECT_FALSE(is_legal(p, tile_then_skew));
}

TEST(Skew, InterchangeAcrossSkewedPairRejected) {
  const ir::Program p = matmul3d(8, 8, 8);
  Schedule s;
  s.skews.push_back({0, 1, 1});
  s.interchanges.push_back({0, 0, 2});  // crosses the (1,2) skewed pair
  std::string why;
  EXPECT_FALSE(is_legal(p, s, &why));
  EXPECT_NE(why.find("skewed pair"), std::string::npos);
}

TEST(Skew, FusedSkewedLevelRejected) {
  const ir::Program p = producer_consumer(6, 10);
  Schedule s;
  s.skews.push_back({0, 0, 1});
  s.fusions.push_back({0, 1, 2});
  // Fusion runs first canonically, then the skew targets the fused nest;
  // skewing a fused pair is fine, but fusing *into* a skewed nest is not
  // expressible. Verify the combination stays semantics-preserving.
  ApplyResult r = try_apply_schedule(p, s);
  if (r.ok) {
    const auto r0 = sim::Interpreter::execute(p, 4);
    const auto r1 = sim::Interpreter::execute(r.program, 4);
    EXPECT_LT(sim::Interpreter::max_rel_difference(p, r0, r1), 1e-9);
  }
}

TEST(Unimodular, PermutationMatchesInterchange) {
  const ir::Program p = simple2d(8, 12);
  Schedule u;
  u.unimodulars.push_back({0, 0, {0, 1, 1, 0}});
  Schedule i;
  i.interchanges.push_back({0, 0, 1});
  const ir::Program tu = apply_schedule(p, u);
  const ir::Program ti = apply_schedule(p, i);
  EXPECT_EQ(tu.extents_of(0), ti.extents_of(0));
  EXPECT_TRUE(tu.loop(tu.nest_of(0)[0]).tag_unimodular);
  const auto r0 = sim::Interpreter::execute(p, 5);
  const auto r1 = sim::Interpreter::execute(tu, 5);
  EXPECT_LT(sim::Interpreter::max_rel_difference(p, r0, r1), 1e-9);
}

TEST(Unimodular, LowerTriangularIsSkew) {
  const ir::Program p = simple2d(8, 12);
  Schedule u;
  u.unimodulars.push_back({0, 0, {1, 0, 3, 1}});  // y0 = i, y1 = 3i + j
  const ir::Program t = apply_schedule(p, u);
  EXPECT_EQ(t.validate(), std::nullopt);
  const auto nest = t.nest_of(0);
  const ir::LoopNode& inner = t.loop(nest[1]);
  EXPECT_TRUE(inner.skew_is_sum);
  EXPECT_EQ(inner.skew_factor, 3);
  EXPECT_TRUE(inner.tag_unimodular);
  const auto r0 = sim::Interpreter::execute(p, 6);
  const auto r1 = sim::Interpreter::execute(t, 6);
  EXPECT_LT(sim::Interpreter::max_rel_difference(p, r0, r1), 1e-9);
}

TEST(Unimodular, ThreeByThreeRotationSemantics) {
  const ir::Program p = matmul3d(5, 6, 7);
  Schedule u;
  // Cyclic permutation (i,j,k) -> (j,k,i).
  u.unimodulars.push_back({0, 0, {0, 1, 0, 0, 0, 1, 1, 0, 0}});
  const ir::Program t = apply_schedule(p, u);
  EXPECT_EQ(t.validate(), std::nullopt);
  EXPECT_EQ(t.extents_of(0), (std::vector<std::int64_t>{6, 7, 5}));
  const auto r0 = sim::Interpreter::execute(p, 7);
  const auto r1 = sim::Interpreter::execute(t, 7);
  EXPECT_LT(sim::Interpreter::max_rel_difference(p, r0, r1), 1e-9);
}

TEST(Unimodular, NonUnimodularDeterminantRejected) {
  const ir::Program p = simple2d();
  Schedule s;
  s.unimodulars.push_back({0, 0, {1, 0, 0, 2}});  // det = 2
  std::string why;
  EXPECT_FALSE(is_legal(p, s, &why));
  EXPECT_NE(why.find("unimodular"), std::string::npos);
}

TEST(Unimodular, UndecomposableMatrixRejected) {
  const ir::Program p = simple2d();
  Schedule s;
  s.unimodulars.push_back({0, 0, {2, 1, 1, 1}});  // det = 1 but not P*L*P form
  EXPECT_FALSE(is_legal(p, s));
}

TEST(Unimodular, WrongCoeffCountRejected) {
  const ir::Program p = simple2d();
  Schedule s;
  s.unimodulars.push_back({0, 0, {1, 0, 0}});
  EXPECT_FALSE(is_legal(p, s));
}

// ---------------------------------------------------------------------------
// Dependence distance vectors
// ---------------------------------------------------------------------------

TEST(Dependence, DistanceVectorAlignedFusedPair) {
  const ir::Program p = producer_consumer();
  Schedule s;
  s.fusions.push_back({0, 1, 2});
  const ir::Program t = apply_schedule(p, s);
  const auto loads = t.comp(1).rhs.loads();
  for (const auto& load : loads) {
    if (load.buffer_id != t.comp(0).store.buffer_id) continue;
    const auto d = dependence_distance_ranges(t, 0, 1, load);
    ASSERT_TRUE(d.has_value());
    ASSERT_EQ(d->size(), 2u);
    EXPECT_EQ((*d)[0].min, 0);
    EXPECT_EQ((*d)[0].max, 0);
    EXPECT_EQ((*d)[1].min, 0);
    EXPECT_EQ((*d)[1].max, 0);
  }
}

TEST(Dependence, LexOrderHoldsOnLegalPrograms) {
  const ir::Program p = producer_consumer();
  EXPECT_EQ(check_lexicographic_order(p), std::nullopt);
  Schedule s;
  s.fusions.push_back({0, 1, 2});
  EXPECT_EQ(check_lexicographic_order(apply_schedule(p, s)), std::nullopt);
}

TEST(Dependence, LexOrderFlagsForwardReadInSharedNest) {
  // prod and cons share a root natively; cons reads prod's output one j
  // ahead, i.e. a value the interleaved order has not produced yet.
  ProgramBuilder b("t");
  Var I = b.var("I", 8), J = b.var("J", 9);
  int pad_buf = -1;
  b.computation("pad", {I, J}, {I, J}, SExpr(0.0), &pad_buf);
  b.new_root();
  Var i = b.var("i", 8), j = b.var("j", 8);
  b.computation_into(pad_buf, "prod", {i, j}, {i, j}, b.load(pad_buf, {i, j}) + 1.0);
  b.computation("cons", {i, j}, {i, j}, b.load(pad_buf, {i, j + 1}) * 2.0);
  const ir::Program p = b.build();
  ASSERT_EQ(p.nest_of(1), p.nest_of(2));  // shared nest
  const auto problem = check_lexicographic_order(p);
  ASSERT_TRUE(problem.has_value());
  EXPECT_NE(problem->find("prod"), std::string::npos);
}

TEST(Dependence, InterchangeRejectedWhenItReversesDependence) {
  // cons reads prod's output with the j index reversed: the (i,j)->(j,i)
  // swap would make some consumer iterations precede the producing ones.
  ProgramBuilder b("t");
  Var i = b.var("i", 8), j = b.var("j", 8);
  const int in = b.input("in", {8, 8});
  const int prod = b.computation("prod", {i, j}, {i, j}, b.load(in, {i, j}) + 1.0);
  b.computation("cons", {i, j}, {i, j}, b.load(b.buffer_of(prod), {j, i}) * 2.0);
  const ir::Program p = b.build();
  ASSERT_EQ(p.nest_of(0), p.nest_of(1));
  Schedule s;
  s.interchanges.push_back({0, 0, 1});
  std::string why;
  EXPECT_FALSE(is_legal(p, s, &why));
  EXPECT_NE(why.find("dependence"), std::string::npos);
}

// Property: whatever try_apply_schedule accepts never violates lexicographic
// producer-before-consumer order (on programs that satisfy it to begin with).
class LegalityFuzz : public ::testing::TestWithParam<int> {};

TEST_P(LegalityFuzz, AcceptedSchedulesKeepDependencesLexNonNegative) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  datagen::GeneratorOptions gopt = datagen::GeneratorOptions::tiny();
  gopt.p_share_root = 0.6;  // stress shared-nest dependences
  datagen::RandomProgramGenerator gen(gopt);
  const ir::Program p = gen.generate(seed);
  if (check_lexicographic_order(p).has_value()) GTEST_SKIP();
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  for (int trial = 0; trial < 8; ++trial) {
    // Unvalidated random specs: many are illegal; the property is that the
    // accepted ones never produce a lexicographically negative dependence.
    Schedule s;
    for (const ir::Computation& c : p.comps) {
      const int depth = p.depth_of(c.id);
      if (depth >= 2 && rng.bernoulli(0.6))
        s.skews.push_back({c.id, static_cast<int>(rng.uniform_int(0, depth - 2)),
                           rng.uniform_int(1, 3)});
      if (depth >= 2 && rng.bernoulli(0.6))
        s.interchanges.push_back({c.id, static_cast<int>(rng.uniform_int(0, depth - 1)),
                                  static_cast<int>(rng.uniform_int(0, depth - 1))});
      if (depth >= 2 && rng.bernoulli(0.3)) {
        std::vector<std::int64_t> u = rng.bernoulli(0.5)
                                          ? std::vector<std::int64_t>{0, 1, 1, 0}
                                          : std::vector<std::int64_t>{1, 0, 2, 1};
        s.unimodulars.push_back({c.id, static_cast<int>(rng.uniform_int(0, depth - 2)),
                                 std::move(u)});
      }
    }
    ApplyResult applied = try_apply_schedule(p, s);
    if (!applied.ok) continue;
    EXPECT_EQ(check_lexicographic_order(applied.program), std::nullopt)
        << "schedule: " << s.to_string() << "\nprogram:\n"
        << p.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LegalityFuzz, ::testing::Range(0, 40));

// ---------------------------------------------------------------------------
// Combined schedules and the semantics-preservation property
// ---------------------------------------------------------------------------

TEST(Apply, FullPipelineOnConvLikeProgram) {
  ProgramBuilder b("conv");
  Var n = b.var("n", 2), f = b.var("f", 4), y = b.var("y", 10), x = b.var("x", 10);
  Var c = b.var("c", 3), k0 = b.var("k0", 3), k1 = b.var("k1", 3);
  const int input = b.input("input", {2, 3, 12, 12});
  const int weights = b.input("weights", {4, 3, 3, 3});
  b.computation("conv", {n, f, y, x, c, k0, k1}, {n, f, y, x},
                b.load(weights, {f, c, k0, k1}) * b.load(input, {n, c, y + k0, x + k1}));
  const ir::Program p = b.build();
  Schedule s;
  s.interchanges.push_back({0, 4, 5});
  s.tiles.push_back({0, 2, {4, 4}});
  s.unrolls.push_back({0, 3});
  s.parallels.push_back({0, 1});
  s.vectorizes.push_back({0, 2});
  const ir::Program t = apply_schedule(p, s);
  EXPECT_EQ(t.validate(), std::nullopt);
  EXPECT_EQ(t.nest_of(0).size(), 9u);
  const auto r0 = sim::Interpreter::execute(p, 3);
  const auto r1 = sim::Interpreter::execute(t, 3);
  EXPECT_LT(sim::Interpreter::max_rel_difference(p, r0, r1), 1e-9);
}

TEST(Apply, ResultIsIndependentCopy) {
  const ir::Program p = simple2d();
  Schedule s;
  s.tiles.push_back({0, 0, {4, 4}});
  const ir::Program t = apply_schedule(p, s);
  EXPECT_EQ(p.loops.size(), 2u);  // original untouched
  EXPECT_EQ(t.loops.size(), 4u);
}

TEST(Apply, ThrowingVariantReportsReason) {
  const ir::Program p = simple2d();
  Schedule s;
  s.tiles.push_back({0, 0, {64, 64}});
  EXPECT_THROW(apply_schedule(p, s), std::invalid_argument);
}

// Property: any schedule accepted by the legality checker preserves program
// semantics exactly (interpreter results are bit-comparable modulo float
// reassociation tolerance). This is the core guarantee the paper's data
// generator relies on ("randomly generated programs are correct by
// construction ... rules guarantee that code transformations are valid").
class SemanticsPreservation : public ::testing::TestWithParam<int> {};

TEST_P(SemanticsPreservation, RandomScheduleKeepsResults) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  const ir::Program p = gen.generate(seed);
  datagen::RandomScheduleGenerator sched_gen;
  Rng rng(seed ^ 0xabcdef);
  const auto base = sim::Interpreter::execute(p, seed);
  for (int trial = 0; trial < 4; ++trial) {
    const Schedule s = sched_gen.generate(p, rng);
    ApplyResult applied = try_apply_schedule(p, s);
    ASSERT_TRUE(applied.ok) << "generator produced illegal schedule: " << s.to_string() << ": "
                            << applied.error;
    const auto transformed = sim::Interpreter::execute(applied.program, seed);
    EXPECT_LT(sim::Interpreter::max_rel_difference(p, base, transformed), 1e-9)
        << "schedule: " << s.to_string() << "\nprogram:\n"
        << p.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemanticsPreservation, ::testing::Range(0, 25));

}  // namespace
}  // namespace tcm::transforms
