#include <gtest/gtest.h>

#include "benchsuite/benchmarks.h"
#include "model/featurize.h"
#include "sim/interpreter.h"
#include "sim/machine_model.h"
#include "transforms/apply.h"

namespace tcm::benchsuite {
namespace {

TEST(Benchsuite, AllTenPresentWithPaperNames) {
  const auto benchmarks = paper_benchmarks(8);
  ASSERT_EQ(benchmarks.size(), 10u);
  const std::vector<std::string> expected = {"box blur", "conv + relu", "convolution",
                                             "cvtcolor",  "doitgen",     "heat2d",
                                             "heat3d",    "jacobi2d",    "mvt",
                                             "seidel2d"};
  for (std::size_t i = 0; i < expected.size(); ++i) EXPECT_EQ(benchmarks[i].name, expected[i]);
}

class EveryBenchmark : public ::testing::TestWithParam<int> {};

TEST_P(EveryBenchmark, IsValid) {
  const auto benchmarks = paper_benchmarks(8);
  const ir::Program& p = benchmarks[static_cast<std::size_t>(GetParam())].program;
  EXPECT_EQ(p.validate(), std::nullopt) << p.to_string();
}

TEST_P(EveryBenchmark, FitsTheFastFeatureConfig) {
  const auto benchmarks = paper_benchmarks(1);  // full paper sizes
  const ir::Program& p = benchmarks[static_cast<std::size_t>(GetParam())].program;
  std::string error;
  const auto f = model::featurize(p, {}, model::FeatureConfig::fast(), &error);
  EXPECT_TRUE(f.has_value()) << error;
}

TEST_P(EveryBenchmark, MachineModelGivesPositiveTime) {
  const auto benchmarks = paper_benchmarks(1);
  const ir::Program& p = benchmarks[static_cast<std::size_t>(GetParam())].program;
  sim::MachineModel m;
  const double t = m.execution_time_seconds(p);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 3600.0);  // sanity: nothing takes an hour
}

INSTANTIATE_TEST_SUITE_P(All, EveryBenchmark, ::testing::Range(0, 10));

TEST(Benchsuite, PaperSizesMatchTable3) {
  // Spot-check the Table 3 defaults through buffer shapes.
  const ir::Program conv = make_convolution();
  EXPECT_EQ(conv.buffer(0).dims, (std::vector<std::int64_t>{8, 3, 1024, 1024}));
  EXPECT_EQ(conv.buffer(1).dims, (std::vector<std::int64_t>{2, 3, 3, 3}));
  const ir::Program mvt = make_mvt();
  EXPECT_EQ(mvt.buffer(0).dims, (std::vector<std::int64_t>{1024, 1024}));
  const ir::Program seidel = make_seidel2d();
  EXPECT_EQ(seidel.buffer(0).dims, (std::vector<std::int64_t>{256, 256}));
  const ir::Program heat3d = make_heat3d();
  EXPECT_EQ(heat3d.buffer(0).dims, (std::vector<std::int64_t>{770, 898, 1024}));
  const ir::Program jacobi = make_jacobi2d();
  EXPECT_EQ(jacobi.buffer(0).dims, (std::vector<std::int64_t>{130, 1024}));
}

TEST(Benchsuite, CvtcolorComputesWeightedSum) {
  const ir::Program p = make_cvtcolor(8, 8);
  const auto bufs = sim::Interpreter::execute(p, 3);
  const auto& rgb = bufs[0];
  const auto& gray = bufs[1];
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      const std::size_t i = static_cast<std::size_t>(y * 8 + x);
      const double expected =
          rgb[i] * 0.299 + rgb[64 + i] * 0.587 + rgb[128 + i] * 0.114;
      EXPECT_NEAR(gray[i], expected, 1e-12);
    }
  }
}

TEST(Benchsuite, BoxBlurAveragesNeighbourhood) {
  const ir::Program p = make_box_blur(1, 6, 6);
  const auto bufs = sim::Interpreter::execute(p, 7);
  const auto& in = bufs[0];
  const auto& out = bufs[1];
  double expected = 0;
  for (int dy = 0; dy < 3; ++dy)
    for (int dx = 0; dx < 3; ++dx) expected += in[static_cast<std::size_t>(dy * 6 + dx)];
  expected /= 9.0;
  EXPECT_NEAR(out[0], expected, 1e-12);
}

TEST(Benchsuite, MvtIsTwoReductions) {
  const ir::Program p = make_mvt(16);
  ASSERT_EQ(p.comps.size(), 2u);
  EXPECT_TRUE(p.comp(0).is_reduction);
  EXPECT_TRUE(p.comp(1).is_reduction);
  // x2 reads the transposed matrix.
  const auto loads = p.comp(1).rhs.loads();
  EXPECT_EQ(loads[0].matrix.at(0, 1), 1);  // row index driven by j
  EXPECT_EQ(loads[0].matrix.at(1, 0), 1);  // column index driven by i
}

TEST(Benchsuite, ConvReluIsFusable) {
  const ir::Program p = make_conv_relu(2, 3, 32, 32, 2, 3);
  transforms::Schedule s;
  s.fusions.push_back({0, 1, 4});
  EXPECT_TRUE(transforms::is_legal(p, s));
  // Semantics preserved under fusion.
  const ir::Program t = transforms::apply_schedule(p, s);
  const auto r0 = sim::Interpreter::execute(p, 5);
  const auto r1 = sim::Interpreter::execute(t, 5);
  EXPECT_LT(sim::Interpreter::max_rel_difference(p, r0, r1), 1e-12);
}

TEST(Benchsuite, ScaleShrinksButKeepsValidity) {
  for (const auto& [name, p] : paper_benchmarks(64)) {
    EXPECT_EQ(p.validate(), std::nullopt) << name;
    for (const ir::Computation& c : p.comps)
      for (std::int64_t e : p.extents_of(c.id)) EXPECT_GE(e, 1);
  }
}

TEST(Benchsuite, Heat2dStencilWeights) {
  const ir::Program p = make_heat2d(8, 8);
  const auto bufs = sim::Interpreter::execute(p, 11);
  const auto& in = bufs[0];
  const auto& out = bufs[1];
  auto at = [&](int y, int x) { return in[static_cast<std::size_t>(y * 8 + x)]; };
  const double expected = at(1, 1) * 0.5 + (at(0, 1) + at(2, 1) + at(1, 0) + at(1, 2)) * 0.125;
  EXPECT_NEAR(out[0], expected, 1e-12);
}

}  // namespace
}  // namespace tcm::benchsuite
