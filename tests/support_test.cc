#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "support/crc32.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

namespace tcm {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, UniformRealInHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, BernoulliRespectsEdgeProbabilities) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyApproximatesP) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(9);
  const int n = 20000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(4);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ChoiceReturnsElement) {
  Rng rng(4);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int c = rng.choice(v);
    EXPECT_TRUE(c == 10 || c == 20 || c == 30);
  }
}

TEST(Rng, ChoiceOnEmptyThrows) {
  Rng rng(4);
  const std::vector<int> empty;
  EXPECT_THROW(rng.choice(empty), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split(1);
  Rng a2(42);
  Rng child2 = a2.split(1);
  EXPECT_EQ(child.next_u64(), child2.next_u64());  // deterministic
  Rng child3 = a2.split(2);
  EXPECT_NE(child2.next_u64(), child3.next_u64());  // salt matters
}

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

TEST(Stats, MeanMedianVariance) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.0);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(2.0));
}

TEST(Stats, MedianEvenCount) {
  const std::vector<double> xs{1, 2, 3, 10};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, EmptyInputsGiveZero) {
  const std::vector<double> xs;
  EXPECT_DOUBLE_EQ(mean(xs), 0.0);
  EXPECT_DOUBLE_EQ(median(xs), 0.0);
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{4, 1, 3, 2};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 1.75);  // numpy linear interpolation
}

TEST(Stats, PercentileEdgeCases) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 99), 7.0);
  EXPECT_THROW(percentile(one, -1), std::invalid_argument);
  EXPECT_THROW(percentile(one, 101), std::invalid_argument);
}

TEST(Stats, ApeBasic) {
  EXPECT_DOUBLE_EQ(ape(2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(ape(2.0, 3.0), 0.5);
  EXPECT_THROW(ape(0.0, 1.0), std::invalid_argument);
}

TEST(Stats, MapeMatchesHandComputation) {
  const std::vector<double> y{1.0, 2.0, 4.0};
  const std::vector<double> yhat{1.1, 1.8, 5.0};
  EXPECT_NEAR(mape(y, yhat), (0.1 + 0.1 + 0.25) / 3.0, 1e-12);
}

TEST(Stats, MapeSizeMismatchThrows) {
  const std::vector<double> y{1.0};
  const std::vector<double> yhat{1.0, 2.0};
  EXPECT_THROW(mape(y, yhat), std::invalid_argument);
}

TEST(Stats, MseMatchesHandComputation) {
  const std::vector<double> y{1.0, 2.0};
  const std::vector<double> yhat{2.0, 4.0};
  EXPECT_DOUBLE_EQ(mse(y, yhat), (1.0 + 4.0) / 2.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> y{1, 2, 3, 4};
  const std::vector<double> z{2, 4, 6, 8};
  EXPECT_NEAR(pearson(y, z), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectAnticorrelation) {
  const std::vector<double> y{1, 2, 3, 4};
  const std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(pearson(y, z), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVarianceIsZero) {
  const std::vector<double> y{1, 1, 1};
  const std::vector<double> z{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(y, z), 0.0);
}

TEST(Stats, RanksAverageTies) {
  const std::vector<double> xs{10, 20, 20, 30};
  const auto r = ranks_average_ties(xs);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, SpearmanMonotonicIsOne) {
  const std::vector<double> y{1, 2, 3, 4, 5};
  const std::vector<double> z{1, 4, 9, 16, 25};  // monotone, nonlinear
  EXPECT_NEAR(spearman(y, z), 1.0, 1e-12);
  EXPECT_LT(pearson(y, z), 1.0);  // pearson sees the nonlinearity
}

TEST(Stats, RSquaredPerfectFit) {
  const std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(r_squared(y, y), 1.0);
}

TEST(Stats, RSquaredMeanPredictorIsZero) {
  const std::vector<double> y{1, 2, 3};
  const std::vector<double> yhat{2, 2, 2};
  EXPECT_DOUBLE_EQ(r_squared(y, yhat), 0.0);
}

TEST(Stats, HistogramBinsAndClamping) {
  const std::vector<double> xs{-1.0, 0.05, 0.15, 0.95, 2.0};
  const Histogram h = make_histogram(xs, 0.0, 1.0, 10);
  EXPECT_EQ(h.counts.size(), 10u);
  EXPECT_EQ(h.counts[0], 2u);  // -1.0 clamped into first bin, 0.05 in first
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[9], 2u);  // 0.95 and clamped 2.0
  EXPECT_DOUBLE_EQ(h.bin_width(), 0.1);
  EXPECT_DOUBLE_EQ(h.bin_left(3), 0.3);
}

TEST(Stats, HistogramRejectsBadArgs) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(make_histogram(xs, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(make_histogram(xs, 1.0, 0.0, 4), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a"});
  t.add_row({"hello, \"world\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"hello, \"\"world\"\"\""), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Table, WriteCsvRoundTrip) {
  Table t({"h1", "h2"});
  t.add_row({"v1", "v2"});
  const std::string path = testing::TempDir() + "/tcm_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {0};
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  EXPECT_STREQ(buf, "h1,h2\n");
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// CRC-32 (the weights-file checksum)
// ---------------------------------------------------------------------------

TEST(Crc32, KnownAnswer) {
  // The canonical IEEE 802.3 check value for "123456789".
  const char digits[] = "123456789";
  EXPECT_EQ(crc32(digits, 9), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Crc32, IncrementalChainingMatchesOneShot) {
  const std::string data = "the weights file is hashed tensor by tensor";
  const std::uint32_t one_shot = crc32(data.data(), data.size());
  std::uint32_t chained = 0;
  for (std::size_t i = 0; i < data.size(); i += 7)
    chained = crc32(data.data() + i, std::min<std::size_t>(7, data.size() - i), chained);
  EXPECT_EQ(chained, one_shot);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data(256, '\0');
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
  const std::uint32_t before = crc32(data.data(), data.size());
  data[100] = static_cast<char>(data[100] ^ 0x10);
  EXPECT_NE(crc32(data.data(), data.size()), before);
}

}  // namespace
}  // namespace tcm
