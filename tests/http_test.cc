// Tests for the HTTP serving surface (src/api/http_server.* + rest.*):
// transport hardening (malformed / oversized / truncated requests must come
// back as clean 4xx Status bodies, never a crash or a hung worker), the v1
// route table, and the acceptance bar — concurrent HTTP clients receive
// predictions bitwise-identical to the in-process futures API while models
// hot-swap under live traffic.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/http_client.h"
#include "api/http_server.h"
#include "api/rest.h"
#include "api/service.h"
#include "api/wire.h"
#include "datagen/generator.h"
#include "model/cost_model.h"
#include "obs/event_log.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "registry/model_registry.h"

namespace fs = std::filesystem;

namespace tcm::api {
namespace {

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("tcm_http_" + name);
  fs::remove_all(dir);
  return dir.string();
}

std::string make_registry(const std::string& name, int versions = 1) {
  const std::string root = scratch_dir(name);
  registry::ModelRegistry reg(root);
  for (int v = 0; v < versions; ++v) {
    Rng rng(300 + static_cast<std::uint64_t>(v));
    model::CostModel m(model::ModelConfig::fast(), rng);
    registry::ModelManifest manifest;
    manifest.config = model::ModelConfig::fast();
    manifest.provenance = "http_test v" + std::to_string(v + 1);
    reg.register_version(m, manifest);
  }
  reg.promote(1);
  return root;
}

// One façade + bound server on an ephemeral loopback port.
struct Stack {
  std::unique_ptr<Service> service;
  std::unique_ptr<HttpServer> server;

  int port() const { return server->port(); }
};

Stack make_stack(const std::string& name, int versions = 1,
                 HttpServerOptions http_options = {}) {
  ServiceOptions opt;
  opt.registry_root = make_registry(name, versions);
  opt.serve.num_threads = 2;
  opt.serve.features = model::FeatureConfig::fast();
  opt.serve.max_queue_latency = std::chrono::microseconds(200);
  Result<std::unique_ptr<Service>> svc = Service::open(std::move(opt));
  EXPECT_TRUE(svc.ok()) << svc.status().to_string();

  http_options.host = "127.0.0.1";
  http_options.port = 0;  // ephemeral
  Stack stack;
  stack.service = svc.take();
  http_options.metrics = stack.service->metrics();    // as tcm_serve wires it
  http_options.watchdog = stack.service->watchdog();  // one watchdog for /healthz
  stack.server = std::make_unique<HttpServer>(http_options);
  bind_routes(*stack.server, *stack.service);
  const Status started = stack.server->start();
  EXPECT_TRUE(started.ok()) << started.to_string();
  return stack;
}

Json predict_body(const ir::Program& program, const transforms::Schedule& schedule) {
  Json body = Json::object();
  body.set("program", to_json(program));
  body.set("schedule", to_json(schedule));
  return body;
}

// Error code out of a Status body (empty string when the shape is off).
std::string error_code(const std::string& body) {
  Result<Json> parsed = Json::parse(body);
  if (!parsed.ok()) return "";
  const Json* err = parsed->find("error");
  if (err == nullptr || err->find("code") == nullptr) return "";
  return err->find("code")->as_string();
}

// ---------------------------------------------------------------------------
// Routes
// ---------------------------------------------------------------------------

TEST(Http, HealthzAndStats) {
  Stack stack = make_stack("health");
  HttpClient client("127.0.0.1", stack.port());

  Result<HttpResponse> health = client.get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().to_string();
  EXPECT_EQ(health->status, 200);
  Result<Json> parsed = Json::parse(health->body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->find("status")->as_string(), "serving");
  EXPECT_EQ(parsed->find("active_version")->as_int(), 1);

  Result<HttpResponse> stats = client.get("/v1/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->status, 200);
  Result<Json> sparsed = Json::parse(stats->body);
  ASSERT_TRUE(sparsed.ok());
  EXPECT_EQ(sparsed->find("active_version")->as_int(), 1);
  EXPECT_NE(sparsed->find("serve"), nullptr);

  stack.server->stop();
}

TEST(Http, PredictSingleAndBatch) {
  Stack stack = make_stack("predict");
  HttpClient client("127.0.0.1", stack.port());
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  datagen::RandomScheduleGenerator sgen;
  Rng rng(21);
  const ir::Program program = gen.generate(1);

  // Single.
  Result<HttpResponse> single =
      client.post("/v1/predict", predict_body(program, sgen.generate(program, rng)).dump());
  ASSERT_TRUE(single.ok()) << single.status().to_string();
  ASSERT_EQ(single->status, 200) << single->body;
  Result<Json> sj = Json::parse(single->body);
  ASSERT_TRUE(sj.ok());
  ASSERT_EQ(sj->find("predictions")->as_array().size(), 1u);
  EXPECT_GT(sj->find("predictions")->as_array()[0].find("speedup")->as_double(), 0.0);
  EXPECT_EQ(sj->find("predictions")->as_array()[0].find("model_version")->as_int(), 1);

  // Batch.
  Json body = Json::object();
  body.set("program", to_json(program));
  Json schedules = Json::array();
  for (int i = 0; i < 5; ++i) schedules.push_back(to_json(sgen.generate(program, rng)));
  body.set("schedules", std::move(schedules));
  Result<HttpResponse> batch = client.post("/v1/predict", body.dump());
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->status, 200) << batch->body;
  Result<Json> bj = Json::parse(batch->body);
  ASSERT_TRUE(bj.ok());
  EXPECT_EQ(bj->find("predictions")->as_array().size(), 5u);

  stack.server->stop();
}

TEST(Http, ModelsPromoteRollback) {
  Stack stack = make_stack("lifecycle", /*versions=*/2);
  HttpClient client("127.0.0.1", stack.port());

  Result<HttpResponse> models = client.get("/v1/models");
  ASSERT_TRUE(models.ok());
  ASSERT_EQ(models->status, 200);
  Result<Json> mj = Json::parse(models->body);
  ASSERT_TRUE(mj.ok());
  EXPECT_EQ(mj->find("active")->as_int(), 1);
  EXPECT_EQ(mj->find("models")->as_array().size(), 2u);

  Result<HttpResponse> promoted = client.post("/v1/models/promote", R"({"version":2})");
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(promoted->status, 200) << promoted->body;
  EXPECT_EQ(stack.service->active_version(), 2);

  Result<HttpResponse> missing = client.post("/v1/models/promote", R"({"version":42})");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  EXPECT_EQ(error_code(missing->body), "NOT_FOUND");

  Result<HttpResponse> rolled = client.post("/v1/models/rollback", "{}");
  ASSERT_TRUE(rolled.ok());
  EXPECT_EQ(rolled->status, 200) << rolled->body;
  Result<Json> rj = Json::parse(rolled->body);
  ASSERT_TRUE(rj.ok());
  EXPECT_EQ(rj->find("active")->as_int(), 1);
  EXPECT_EQ(stack.service->active_version(), 1);

  stack.server->stop();
}

TEST(Http, MetricsExposition) {
  Stack stack = make_stack("metrics");
  HttpClient client("127.0.0.1", stack.port());
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  datagen::RandomScheduleGenerator sgen;
  Rng rng(31);
  const ir::Program program = gen.generate(0);
  ASSERT_TRUE(client.post("/v1/predict",
                          predict_body(program, sgen.generate(program, rng)).dump())
                  .ok());

  Result<HttpResponse> metrics = client.get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(metrics->body.find("# TYPE tcm_serve_requests_total counter"), std::string::npos);
  EXPECT_NE(metrics->body.find("tcm_serve_requests_total 1\n"), std::string::npos);
  EXPECT_NE(metrics->body.find("tcm_model_active_version 1\n"), std::string::npos);
  EXPECT_NE(metrics->body.find("tcm_drift_signal{signal=\"psi\"}"), std::string::npos);
  EXPECT_NE(metrics->body.find("tcm_http_requests_total"), std::string::npos);
  // Histogram families from the shared registry: serving latency (e2e and
  // per stage), batch size, and the HTTP handler-time series.
  EXPECT_NE(metrics->body.find("# TYPE tcm_serve_latency_seconds histogram"), std::string::npos);
  EXPECT_NE(metrics->body.find("tcm_serve_latency_seconds_count 1\n"), std::string::npos);
  EXPECT_NE(metrics->body.find("tcm_stage_duration_seconds_bucket{stage=\"queue_wait\","),
            std::string::npos);
  EXPECT_NE(metrics->body.find("tcm_serve_batch_size_count 1\n"), std::string::npos);
  EXPECT_NE(metrics->body.find("# TYPE tcm_http_request_duration_seconds histogram"),
            std::string::npos);
  // The per-route counter carries route/method/status-class labels now.
  EXPECT_NE(metrics->body.find(
                "tcm_http_requests_total{route=\"/v1/predict\",method=\"POST\",code=\"2xx\"} 1"),
            std::string::npos);

  stack.server->stop();
}

TEST(Http, MetricsContentTypeAndOneTypeLinePerFamily) {
  Stack stack = make_stack("ctype");
  HttpClient client("127.0.0.1", stack.port());
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  datagen::RandomScheduleGenerator sgen;
  Rng rng(61);
  const ir::Program program = gen.generate(1);
  ASSERT_TRUE(client.post("/v1/predict",
                          predict_body(program, sgen.generate(program, rng)).dump())
                  .ok());

  Result<HttpResponse> metrics = client.get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  // The exact Prometheus text exposition content type.
  EXPECT_EQ(metrics->content_type.rfind("text/plain; version=0.0.4", 0), 0u)
      << metrics->content_type;

  // Exactly one # TYPE line per family across all three sources of the
  // render (snapshot, wire counters, instrument registry).
  std::set<std::string> typed;
  std::istringstream lines(metrics->body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ", 0) != 0) continue;
    const std::string name = line.substr(7, line.find(' ', 7) - 7);
    EXPECT_TRUE(typed.insert(name).second) << "duplicate TYPE for " << name;
  }
  // Families that now render out of the instrument registry still show up
  // exactly once next to the snapshot-rendered ones.
  for (const char* family :
       {"tcm_serve_requests_total", "tcm_drift_signal", "tcm_autopilot_polls_total",
        "tcm_serve_queue_depth", "tcm_process_resident_memory_bytes", "tcm_build_info",
        "tcm_http_requests_total"})
    EXPECT_TRUE(typed.count(family)) << "missing TYPE for " << family;

  stack.server->stop();
}

TEST(Http, HealthzFollowsWatchdogDegradedThenUnhealthy) {
  Stack stack = make_stack("watchdog");
  HttpClient client("127.0.0.1", stack.port());
  ASSERT_EQ(client.get("/healthz")->status, 200);

  // Wedge a fake non-critical background thread: register a heartbeat on the
  // service's watchdog, mark it busy, and let it age past its threshold.
  obs::Watchdog& dog = *stack.service->watchdog();
  const obs::Watchdog::Handle poller =
      dog.register_thread("fake_poller", std::chrono::milliseconds(10), /*critical=*/false);
  dog.set_busy(poller, "poll");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  Result<HttpResponse> degraded = client.get("/healthz");
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded->status, 200);  // non-critical: keep routing traffic
  Result<Json> dj = Json::parse(degraded->body);
  ASSERT_TRUE(dj.ok());
  EXPECT_EQ(dj->find("status")->as_string(), "degraded");
  ASSERT_NE(dj->find("reason"), nullptr);
  EXPECT_NE(dj->find("reason")->as_string().find("fake_poller"), std::string::npos);

  // Now a wedged *critical* worker: 503 with the named stall.
  const obs::Watchdog::Handle worker =
      dog.register_thread("fake_batch_worker", std::chrono::milliseconds(10), /*critical=*/true);
  dog.set_busy(worker, "run_batch");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  Result<HttpResponse> unhealthy = client.get("/healthz");
  ASSERT_TRUE(unhealthy.ok());
  EXPECT_EQ(unhealthy->status, 503);
  Result<Json> uj = Json::parse(unhealthy->body);
  ASSERT_TRUE(uj.ok());
  EXPECT_EQ(uj->find("status")->as_string(), "unhealthy");
  EXPECT_NE(uj->find("reason")->as_string().find("fake_batch_worker"), std::string::npos);
  EXPECT_NE(uj->find("reason")->as_string().find("run_batch"), std::string::npos);
  const Json* stalled = uj->find("stalled_threads");
  ASSERT_NE(stalled, nullptr);
  bool named = false;
  for (const Json& t : stalled->as_array())
    if (t.as_string() == "fake_batch_worker") named = true;
  EXPECT_TRUE(named);

  // Recovery: the wedged threads go away, readiness returns.
  dog.unregister(poller);
  dog.unregister(worker);
  Result<HttpResponse> recovered = client.get("/healthz");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->status, 200);
  EXPECT_EQ(Json::parse(recovered->body)->find("status")->as_string(), "serving");

  stack.server->stop();
}

TEST(Http, DebugStateAndEventsAreValidJson) {
  obs::EventLog::instance().set_capacity(512);  // reset the singleton ring
  Stack stack = make_stack("debug", /*versions=*/2);
  HttpClient client("127.0.0.1", stack.port());
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  datagen::RandomScheduleGenerator sgen;
  Rng rng(71);
  const ir::Program program = gen.generate(3);
  ASSERT_TRUE(client.post("/v1/predict",
                          predict_body(program, sgen.generate(program, rng)).dump())
                  .ok());
  ASSERT_EQ(client.post("/v1/models/promote", R"({"version":2})")->status, 200);

  Result<HttpResponse> state = client.get("/debug/state");
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->status, 200);
  Result<Json> sj = Json::parse(state->body);
  ASSERT_TRUE(sj.ok()) << state->body.substr(0, 300);
  const Json* registry = sj->find("registry");
  ASSERT_NE(registry, nullptr);
  EXPECT_EQ(registry->find("active")->as_int(), 2);
  EXPECT_EQ(registry->find("versions")->as_array().size(), 2u);
  ASSERT_NE(registry->find("active_lineage"), nullptr);
  EXPECT_EQ(registry->find("active_lineage")->as_array()[0].as_int(), 2);
  const Json* serving = sj->find("serving");
  ASSERT_NE(serving, nullptr);
  EXPECT_GE(serving->find("requests")->as_int(), 1);
  ASSERT_NE(serving->find("cache"), nullptr);
  EXPECT_EQ(sj->find("autopilot")->find("enabled")->as_bool(), false);
  const Json* watchdog = sj->find("watchdog");
  ASSERT_NE(watchdog, nullptr);
  EXPECT_EQ(watchdog->find("health")->as_string(), "healthy");
  // Batch workers and the HTTP acceptor/workers all heartbeat here.
  EXPECT_GE(watchdog->find("threads")->as_array().size(), 3u);
  ASSERT_NE(sj->find("events"), nullptr);
  EXPECT_GE(sj->find("events")->find("emitted")->as_int(), 1);

  // The flight recorder saw the promote (and the hot swap it caused).
  Result<HttpResponse> events = client.get("/debug/events");
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->status, 200);
  Result<Json> ej = Json::parse(events->body);
  ASSERT_TRUE(ej.ok()) << events->body.substr(0, 300);
  bool saw_promote = false, saw_swap = false;
  for (const Json& e : ej->find("events")->as_array()) {
    const std::string type = e.find("type")->as_string();
    if (type == "promote" &&
        e.find("detail")->as_string().find("to=v2") != std::string::npos)
      saw_promote = true;
    if (type == "hot_swap") saw_swap = true;
  }
  EXPECT_TRUE(saw_promote);
  EXPECT_TRUE(saw_swap);

  stack.server->stop();
}

TEST(Http, RequestIdEchoedAndGenerated) {
  Stack stack = make_stack("reqid");
  HttpClient client("127.0.0.1", stack.port());

  // A client-supplied X-Request-Id comes back verbatim.
  Result<HttpResponse> echoed =
      client.request("GET", "/healthz", "", {{"X-Request-Id", "trace-me-42"}});
  ASSERT_TRUE(echoed.ok()) << echoed.status().to_string();
  ASSERT_NE(echoed->header("X-Request-Id"), nullptr);
  EXPECT_EQ(*echoed->header("X-Request-Id"), "trace-me-42");

  // Without one the server generates an id.
  Result<HttpResponse> generated = client.get("/healthz");
  ASSERT_TRUE(generated.ok());
  ASSERT_NE(generated->header("X-Request-Id"), nullptr);
  EXPECT_EQ(generated->header("X-Request-Id")->rfind("req-", 0), 0u);

  stack.server->stop();
}

TEST(Http, RouteCountersSplitByStatusClass) {
  Stack stack = make_stack("route_counters");
  HttpClient client("127.0.0.1", stack.port());

  ASSERT_TRUE(client.get("/healthz").ok());
  ASSERT_TRUE(client.get("/healthz").ok());
  ASSERT_TRUE(client.get("/nope").ok());                      // 404: unmatched slot
  ASSERT_TRUE(client.post("/v1/predict", "{not json").ok());  // 400 on a real route

  Result<HttpResponse> metrics = client.get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find(
                "tcm_http_requests_total{route=\"/healthz\",method=\"GET\",code=\"2xx\"} 2"),
            std::string::npos);
  EXPECT_NE(metrics->body.find(
                "tcm_http_requests_total{route=\"other\",method=\"other\",code=\"4xx\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics->body.find(
                "tcm_http_requests_total{route=\"/v1/predict\",method=\"POST\",code=\"4xx\"} 1"),
            std::string::npos);
  stack.server->stop();
}

TEST(Http, DebugTracesExportsSampledRequest) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_sample_rate(1.0);
  tracer.clear();

  Stack stack = make_stack("traces");
  HttpClient client("127.0.0.1", stack.port());
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  datagen::RandomScheduleGenerator sgen;
  Rng rng(77);
  const ir::Program program = gen.generate(2);
  Result<HttpResponse> predict =
      client.request("POST", "/v1/predict",
                     predict_body(program, sgen.generate(program, rng)).dump(),
                     {{"X-Request-Id", "traced-predict-1"}});
  ASSERT_TRUE(predict.ok());
  ASSERT_EQ(predict->status, 200) << predict->body;

  Result<HttpResponse> traces = client.get("/debug/traces");
  ASSERT_TRUE(traces.ok());
  EXPECT_EQ(traces->status, 200);
  Result<Json> doc = Json::parse(traces->body);
  ASSERT_TRUE(doc.ok()) << traces->body.substr(0, 200);
  const Json* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_http = false, saw_labeled = false;
  for (const Json& ev : events->as_array()) {
    const std::string name = ev.find("name")->as_string();
    if (name == "http.request") saw_http = true;
    const Json* args = ev.find("args");
    if (args != nullptr && args->find("request_id") != nullptr &&
        args->find("request_id")->as_string() == "traced-predict-1")
      saw_labeled = true;
  }
  EXPECT_TRUE(saw_http);
  EXPECT_TRUE(saw_labeled);

  stack.server->stop();
  tracer.set_sample_rate(0.0);
  tracer.clear();
}

// ---------------------------------------------------------------------------
// Hardening: malformed, oversized, truncated, unknown
// ---------------------------------------------------------------------------

TEST(Http, UnknownRouteAndMethod) {
  Stack stack = make_stack("routes");
  HttpClient client("127.0.0.1", stack.port());

  Result<HttpResponse> missing = client.get("/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  EXPECT_EQ(error_code(missing->body), "NOT_FOUND");

  Result<HttpResponse> wrong_method = client.get("/v1/predict");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);

  stack.server->stop();
}

TEST(Http, MalformedJsonIsCleanBadRequest) {
  Stack stack = make_stack("badjson");
  HttpClient client("127.0.0.1", stack.port());

  for (const std::string body : {std::string("{not json"), std::string("[1,2,"),
                                 std::string("\xff\xfe\x00garbage", 11), std::string("null")}) {
    Result<HttpResponse> response = client.post("/v1/predict", body);
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    EXPECT_EQ(response->status, 400) << body;
    EXPECT_EQ(error_code(response->body), "INVALID_ARGUMENT");
  }
  // Valid JSON, wrong shape.
  Result<HttpResponse> response = client.post("/v1/predict", R"({"program":17})");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400);
  // Empty body.
  response = client.post("/v1/predict", "");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400);
  // The server survived all of it.
  EXPECT_EQ(client.get("/healthz")->status, 200);

  stack.server->stop();
}

TEST(Http, MalformedRequestLineIsBadRequest) {
  Stack stack = make_stack("badline");
  HttpClient client("127.0.0.1", stack.port());
  Result<HttpResponse> response = client.raw_exchange("GARBAGE\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response->status, 400);
  EXPECT_EQ(error_code(response->body), "INVALID_ARGUMENT");
}

TEST(Http, OversizedBodyIsRejectedWithoutReadingIt) {
  HttpServerOptions hopt;
  hopt.max_body_bytes = 2048;
  Stack stack = make_stack("oversize", 1, hopt);
  HttpClient client("127.0.0.1", stack.port());

  // Declared length over the cap: refused from the headers alone.
  Result<HttpResponse> response = client.raw_exchange(
      "POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 1000000\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response->status, 413);
  EXPECT_EQ(error_code(response->body), "RESOURCE_EXHAUSTED");
  EXPECT_EQ(client.get("/healthz")->status, 200);
  stack.server->stop();
}

TEST(Http, OversizedHeadersAreRejected) {
  HttpServerOptions hopt;
  hopt.max_header_bytes = 1024;
  Stack stack = make_stack("bigheader", 1, hopt);
  HttpClient client("127.0.0.1", stack.port());
  std::string request = "GET /healthz HTTP/1.1\r\nHost: x\r\nX-Filler: ";
  request.append(4096, 'a');
  request += "\r\n\r\n";
  Result<HttpResponse> response = client.raw_exchange(request);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response->status, 431);
  stack.server->stop();
}

TEST(Http, TruncatedBodyIsCleanBadRequest) {
  Stack stack = make_stack("truncated");
  HttpClient client("127.0.0.1", stack.port());
  // Declares 100 bytes, sends 10, then half-closes: the worker must answer
  // 400 instead of blocking on the missing 90 bytes.
  Result<HttpResponse> response = client.raw_exchange(
      "POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n0123456789",
      /*half_close=*/true);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response->status, 400);
  EXPECT_EQ(error_code(response->body), "INVALID_ARGUMENT");
  EXPECT_EQ(client.get("/healthz")->status, 200);
  stack.server->stop();
}

TEST(Http, ExpectContinueIsHonored) {
  Stack stack = make_stack("continue");
  HttpClient client("127.0.0.1", stack.port());
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  datagen::RandomScheduleGenerator sgen;
  Rng rng(41);
  const ir::Program program = gen.generate(2);
  Result<HttpResponse> response =
      client.request("POST", "/v1/predict",
                     predict_body(program, sgen.generate(program, rng)).dump(),
                     {{"Expect", "100-continue"}});
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response->status, 200) << response->body;
  stack.server->stop();
}

TEST(Http, KeepAliveReusesOneConnection) {
  Stack stack = make_stack("keepalive");
  HttpClient client("127.0.0.1", stack.port());
  for (int i = 0; i < 5; ++i) ASSERT_EQ(client.get("/healthz")->status, 200);
  EXPECT_EQ(stack.server->connections_accepted(), 1u);
  EXPECT_EQ(stack.server->requests_handled(), 5u);
  stack.server->stop();
}

// ---------------------------------------------------------------------------
// The acceptance bar: >= 8 concurrent HTTP clients, predictions bitwise-
// identical to the in-process futures API, hot-swap via /v1/models/promote
// under live traffic.
// ---------------------------------------------------------------------------

TEST(Http, ConcurrentClientsBitwiseParityWithHotSwapUnderTraffic) {
  Stack stack = make_stack("hammer", /*versions=*/2);

  // Workload: a handful of (program, schedule) pairs reused by all clients.
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  datagen::RandomScheduleGenerator sgen;
  Rng rng(51);
  std::vector<ir::Program> programs;
  std::vector<transforms::Schedule> schedules;
  std::vector<std::string> bodies;
  for (int i = 0; i < 6; ++i) {
    programs.push_back(gen.generate(static_cast<std::uint64_t>(i % 3)));
    schedules.push_back(sgen.generate(programs.back(), rng));
    bodies.push_back(predict_body(programs.back(), schedules.back()).dump());
  }

  // Expected speedups per version via the in-process futures API (the
  // façade's predict is proven bitwise-equal to raw submit() in api_test).
  auto expected_for_active = [&] {
    std::vector<double> out;
    for (std::size_t i = 0; i < programs.size(); ++i) {
      PredictRequest request;
      request.program = programs[i];
      request.schedules.push_back(schedules[i]);
      Result<PredictResponse> r = stack.service->predict(request);
      EXPECT_TRUE(r.ok()) << r.status().to_string();
      out.push_back(r->predictions[0].speedup);
    }
    return out;
  };
  const std::vector<double> expected_v1 = expected_for_active();
  ASSERT_TRUE(stack.service->promote(2).ok());
  const std::vector<double> expected_v2 = expected_for_active();
  Result<int> back = stack.service->rollback();
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(stack.service->active_version(), 1);

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 12;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::atomic<int> done{0};
  const int port = stack.port();

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client("127.0.0.1", port);
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const std::size_t i = static_cast<std::size_t>((c + r)) % bodies.size();
        Result<HttpResponse> response = client.post("/v1/predict", bodies[i]);
        if (!response.ok() || response->status != 200) {
          ++failures;
          continue;
        }
        Result<Json> parsed = Json::parse(response->body);
        if (!parsed.ok()) {
          ++failures;
          continue;
        }
        const Json& item = parsed->find("predictions")->as_array()[0];
        const double speedup = item.find("speedup")->as_double();
        const int version = static_cast<int>(item.find("model_version")->as_int());
        const double expected = version == 1 ? expected_v1[i] : expected_v2[i];
        if (speedup != expected) ++mismatches;  // bitwise comparison
        ++done;
      }
    });
  }

  // Hot-swap through the HTTP surface mid-traffic.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  HttpClient admin("127.0.0.1", port);
  Result<HttpResponse> promoted = admin.post("/v1/models/promote", R"({"version":2})");
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(promoted->status, 200) << promoted->body;

  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(done.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(stack.service->active_version(), 2);
  EXPECT_GE(stack.service->stats().serve.model_swaps, 1u);

  stack.server->stop();
}

}  // namespace
}  // namespace tcm::api
