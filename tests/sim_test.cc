#include <gtest/gtest.h>

#include "benchsuite/benchmarks.h"
#include "ir/builder.h"
#include "sim/cache_sim.h"
#include "sim/executor.h"
#include "sim/interpreter.h"
#include "sim/machine_model.h"
#include "transforms/apply.h"

namespace tcm::sim {
namespace {

using ir::ProgramBuilder;
using ir::Var;

ir::Program tiny_matmul(std::int64_t n) {
  ProgramBuilder b("mm");
  Var i = b.var("i", n), j = b.var("j", n), k = b.var("k", n);
  const int a = b.input("A", {n, n});
  const int bb = b.input("B", {n, n});
  b.computation("mm", {i, j, k}, {i, j}, b.load(a, {i, k}) * b.load(bb, {k, j}));
  return b.build();
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

TEST(Interpreter, ElementwiseKnownValues) {
  ProgramBuilder b("t");
  Var i = b.var("i", 3);
  const int in = b.input("in", {3});
  b.computation("c", {i}, {i}, b.load(in, {i}) * 2.0 + 1.0);
  const ir::Program p = b.build();
  BufferData bufs = Interpreter::make_buffers(p, 1);
  Interpreter::run(p, bufs);
  for (int i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(bufs[1][static_cast<std::size_t>(i)],
                     bufs[0][static_cast<std::size_t>(i)] * 2.0 + 1.0);
}

TEST(Interpreter, ReductionSumsOverInnerLoop) {
  ProgramBuilder b("t");
  Var i = b.var("i", 2), k = b.var("k", 5);
  const int in = b.input("in", {2, 5});
  b.computation("dot", {i, k}, {i}, b.load(in, {i, k}));
  const ir::Program p = b.build();
  BufferData bufs = Interpreter::make_buffers(p, 2);
  Interpreter::run(p, bufs);
  for (int i = 0; i < 2; ++i) {
    double expected = 0;
    for (int k = 0; k < 5; ++k) expected += bufs[0][static_cast<std::size_t>(i * 5 + k)];
    EXPECT_DOUBLE_EQ(bufs[1][static_cast<std::size_t>(i)], expected);
  }
}

TEST(Interpreter, StencilReadsNeighbours) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4);
  const int in = b.input("in", {6});
  b.computation("s", {i}, {i}, b.load(in, {i}) + b.load(in, {i + 2}));
  const ir::Program p = b.build();
  BufferData bufs = Interpreter::make_buffers(p, 3);
  Interpreter::run(p, bufs);
  for (int i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(bufs[1][static_cast<std::size_t>(i)],
                     bufs[0][static_cast<std::size_t>(i)] + bufs[0][static_cast<std::size_t>(i + 2)]);
}

TEST(Interpreter, InputsAreDeterministicInSeed) {
  const ir::Program p = tiny_matmul(4);
  const auto a = Interpreter::make_buffers(p, 9);
  const auto b2 = Interpreter::make_buffers(p, 9);
  EXPECT_EQ(a[0], b2[0]);
  const auto c = Interpreter::make_buffers(p, 10);
  EXPECT_NE(a[0], c[0]);
}

TEST(Interpreter, MaxRelDifferenceDetectsChange) {
  const ir::Program p = tiny_matmul(4);
  auto a = Interpreter::execute(p, 1);
  auto b2 = a;
  EXPECT_DOUBLE_EQ(Interpreter::max_rel_difference(p, a, b2), 0.0);
  b2[2][0] += 1.0;  // output buffer of the matmul
  EXPECT_GT(Interpreter::max_rel_difference(p, a, b2), 0.0);
}

TEST(Interpreter, ProducerConsumerChain) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4);
  const int in = b.input("in", {4});
  const int first = b.computation("first", {i}, {i}, b.load(in, {i}) * 3.0);
  Var i2 = b.var("i2", 4);
  b.computation("second", {i2}, {i2}, b.load(b.buffer_of(first), {i2}) + 1.0);
  const ir::Program p = b.build();
  BufferData bufs = Interpreter::make_buffers(p, 4);
  Interpreter::run(p, bufs);
  for (int i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(bufs[2][static_cast<std::size_t>(i)],
                     bufs[0][static_cast<std::size_t>(i)] * 3.0 + 1.0);
}

TEST(Interpreter, TiledTailLoopsCoverWholeDomain) {
  ProgramBuilder b("t");
  Var i = b.var("i", 10);
  const int in = b.input("in", {10});
  b.computation("c", {i}, {i}, b.load(in, {i}) + 1.0);
  const ir::Program p = b.build();
  // Manually tile i by 4 (non-divisible): tail handling must visit all 10.
  transforms::Schedule s;
  s.tiles = {};  // 1-D tiling unsupported; use 2-D program instead
  ProgramBuilder b2("t2");
  Var x = b2.var("x", 10), y = b2.var("y", 6);
  const int in2 = b2.input("in2", {10, 6});
  b2.computation("c2", {x, y}, {x, y}, b2.load(in2, {x, y}) + 1.0);
  const ir::Program p2 = b2.build();
  transforms::Schedule s2;
  s2.tiles.push_back({0, 0, {4, 4}});
  const ir::Program t2 = transforms::apply_schedule(p2, s2);
  const auto r0 = Interpreter::execute(p2, 5);
  const auto r1 = Interpreter::execute(t2, 5);
  EXPECT_DOUBLE_EQ(Interpreter::max_rel_difference(p2, r0, r1), 0.0);
}

// ---------------------------------------------------------------------------
// Cache simulator
// ---------------------------------------------------------------------------

TEST(CacheSim, SequentialAccessHitsWithinLine) {
  Cache cache({1024, 4, 64});
  int hits = 0;
  for (std::uint64_t a = 0; a < 64; a += 8) hits += cache.access(a);
  EXPECT_EQ(cache.misses(), 1u);  // one line fill
  EXPECT_EQ(hits, 7);
}

TEST(CacheSim, CapacityEviction) {
  // 2 sets x 2 ways x 64B lines = 256 B cache.
  Cache cache({256, 2, 64});
  // Touch 4 lines mapping to the same set (stride = num_sets * line).
  for (int rep = 0; rep < 2; ++rep)
    for (std::uint64_t i = 0; i < 4; ++i) cache.access(i * 2 * 64);
  // Working set (4 lines) exceeds associativity (2): everything misses.
  EXPECT_EQ(cache.misses(), 8u);
}

TEST(CacheSim, LruKeepsHotLine) {
  Cache cache({256, 2, 64});  // 2 sets, 2 ways
  const std::uint64_t kHot = 0;
  cache.access(kHot);
  cache.access(2 * 64);  // same set, second way
  cache.access(kHot);    // refresh LRU
  cache.access(4 * 64);  // evicts 2*64, not the hot line
  EXPECT_TRUE(cache.access(kHot));
}

TEST(CacheSim, HierarchyEscalatesOnMiss) {
  CacheHierarchy h(MachineSpec::tiny());
  EXPECT_EQ(h.access(0), 3);  // cold: memory
  EXPECT_EQ(h.access(0), 0);  // now L1
  EXPECT_EQ(h.total_accesses(), 2u);
  EXPECT_GT(h.total_latency_cycles(), 0.0);
}

TEST(CacheSim, TraceVisitsAllAccesses) {
  const ir::Program p = tiny_matmul(8);
  CacheHierarchy h(MachineSpec::tiny());
  // 8^3 iterations x (2 loads + 1 store).
  EXPECT_EQ(simulate_trace(p, h), 8u * 8 * 8 * 3);
}

TEST(CacheSim, TraceMaxAccessCap) {
  const ir::Program p = tiny_matmul(8);
  CacheHierarchy h(MachineSpec::tiny());
  EXPECT_EQ(simulate_trace(p, h, 100), 100u);
}

TEST(CacheSim, TilingReducesMissesOnBigMatmul) {
  // n = 72 keeps row strides off the power-of-two set-conflict pattern (a
  // 4 KiB / 8-set cache aliases 512-byte strides pathologically, which is a
  // real phenomenon but not the one under test here).
  const ir::Program p = tiny_matmul(72);  // B footprint 40 KiB >> tiny L1
  transforms::Schedule s;
  s.tiles.push_back({0, 0, {8, 8, 8}});
  const ir::Program tiled = transforms::apply_schedule(p, s);
  const MachineSpec spec = MachineSpec::tiny();
  CacheHierarchy h0(spec), h1(spec);
  simulate_trace(p, h0);
  simulate_trace(tiled, h1);
  EXPECT_LT(static_cast<double>(h1.level(0).misses()),
            0.8 * static_cast<double>(h0.level(0).misses()));
  // The analytical model must agree directionally.
  MachineModel model(spec);
  EXPECT_LT(model.execution_time_seconds(tiled), model.execution_time_seconds(p));
}

// ---------------------------------------------------------------------------
// Machine model
// ---------------------------------------------------------------------------

TEST(MachineModel, ParallelSpeedupBoundedByCores) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4096), j = b.var("j", 256);
  const int in = b.input("in", {4096, 256});
  b.computation("c", {i, j}, {i, j}, b.load(in, {i, j}) * 2.0);
  const ir::Program p = b.build();
  transforms::Schedule s;
  s.parallels.push_back({0, 0});
  const ir::Program t = transforms::apply_schedule(p, s);
  MachineModel m;
  const double speedup = m.execution_time_seconds(p) / m.execution_time_seconds(t);
  EXPECT_GT(speedup, 2.0);
  EXPECT_LE(speedup, m.spec().cores);
}

TEST(MachineModel, ParallelizingTinyLoopHurts) {
  ProgramBuilder b("t");
  Var i = b.var("i", 4), j = b.var("j", 8);
  const int in = b.input("in", {4, 8});
  b.computation("c", {i, j}, {i, j}, b.load(in, {i, j}) * 2.0);
  const ir::Program p = b.build();
  transforms::Schedule s;
  s.parallels.push_back({0, 0});
  const ir::Program t = transforms::apply_schedule(p, s);
  MachineModel m;
  EXPECT_LT(m.execution_time_seconds(p) / m.execution_time_seconds(t), 0.1);
}

TEST(MachineModel, InnerParallelWorseThanOuter) {
  ProgramBuilder b("t");
  Var i = b.var("i", 512), j = b.var("j", 512);
  const int in = b.input("in", {512, 512});
  b.computation("c", {i, j}, {i, j}, b.load(in, {i, j}) * 2.0);
  const ir::Program p = b.build();
  transforms::Schedule s_outer, s_inner;
  s_outer.parallels.push_back({0, 0});
  s_inner.parallels.push_back({0, 1});
  MachineModel m;
  const double t_outer = m.execution_time_seconds(transforms::apply_schedule(p, s_outer));
  const double t_inner = m.execution_time_seconds(transforms::apply_schedule(p, s_inner));
  EXPECT_LT(t_outer, t_inner);
}

TEST(MachineModel, StrideOneFasterThanTransposedAccess) {
  ProgramBuilder b1("row");
  {
    Var i = b1.var("i", 1024), j = b1.var("j", 1024);
    const int in = b1.input("in", {1024, 1024});
    b1.computation("c", {i, j}, {i, j}, b1.load(in, {i, j}) * 2.0);
  }
  ProgramBuilder b2("col");
  {
    Var i = b2.var("i", 1024), j = b2.var("j", 1024);
    const int in = b2.input("in", {1024, 1024});
    b2.computation("c", {i, j}, {i, j}, b2.load(in, {j, i}) * 2.0);
  }
  MachineModel m;
  EXPECT_LT(m.execution_time_seconds(b1.build()), m.execution_time_seconds(b2.build()));
}

TEST(MachineModel, InterchangeFixesBadStrides) {
  ProgramBuilder b("t");
  Var i = b.var("i", 1024), j = b.var("j", 1024);
  const int in = b.input("in", {1024, 1024});
  b.computation("c", {i, j}, {i, j}, b.load(in, {j, i}) * 2.0);
  const ir::Program p = b.build();
  transforms::Schedule s;
  s.interchanges.push_back({0, 0, 1});
  MachineModel m;
  // After interchange the load is stride-1 again (the store becomes strided,
  // but loads dominate here? both flip; allow either direction but the two
  // must differ, showing sensitivity).
  const double t0 = m.execution_time_seconds(p);
  const double t1 = m.execution_time_seconds(transforms::apply_schedule(p, s));
  EXPECT_NE(t0, t1);
}

TEST(MachineModel, ThreeDTilingHelpsBigMatmul) {
  const ir::Program p = tiny_matmul(1024);
  transforms::Schedule s;
  s.tiles.push_back({0, 0, {64, 64, 64}});
  MachineModel m;
  EXPECT_LT(m.execution_time_seconds(transforms::apply_schedule(p, s)),
            m.execution_time_seconds(p));
}

TEST(MachineModel, FusionImprovesProducerConsumerLocality) {
  ProgramBuilder b("t");
  Var i = b.var("i", 2048), j = b.var("j", 2048);
  const int in = b.input("in", {2048, 2048});
  const int prod = b.computation("prod", {i, j}, {i, j}, b.load(in, {i, j}) * 2.0);
  Var i2 = b.var("i2", 2048), j2 = b.var("j2", 2048);
  b.computation("cons", {i2, j2}, {i2, j2}, b.load(b.buffer_of(prod), {i2, j2}) + 1.0);
  const ir::Program p = b.build();
  transforms::Schedule s;
  s.fusions.push_back({0, 1, 2});
  MachineModel m;
  EXPECT_LT(m.execution_time_seconds(transforms::apply_schedule(p, s)),
            m.execution_time_seconds(p));
}

TEST(MachineModel, UnrollReducesOverheadModestly) {
  const ir::Program p = tiny_matmul(256);
  transforms::Schedule s;
  s.unrolls.push_back({0, 8});
  MachineModel m;
  const double t0 = m.execution_time_seconds(p);
  const double t1 = m.execution_time_seconds(transforms::apply_schedule(p, s));
  EXPECT_LT(t1, t0);
  EXPECT_GT(t1, 0.3 * t0);  // unrolling is not a silver bullet
}

TEST(MachineModel, VectorizeHelpsStrideOneBody) {
  ProgramBuilder b("t");
  Var i = b.var("i", 1024), j = b.var("j", 1024);
  const int in = b.input("in", {1024, 1024});
  const int in2 = b.input("in2", {1024, 1024});
  b.computation("c", {i, j}, {i, j}, b.load(in, {i, j}) * b.load(in2, {i, j}) + 1.0);
  const ir::Program p = b.build();
  transforms::Schedule s;
  s.vectorizes.push_back({0, 8});
  MachineModel m;
  EXPECT_LT(m.execution_time_seconds(transforms::apply_schedule(p, s)),
            m.execution_time_seconds(p));
}

TEST(MachineModel, BreakdownSumsToPositiveCycles) {
  const ir::Program p = tiny_matmul(64);
  MachineModel m;
  const auto b = m.cost_breakdown(p);
  EXPECT_GT(b.arith_cycles, 0);
  EXPECT_GT(b.mem_cycles, 0);
  EXPECT_GT(b.overhead_cycles, 0);
  EXPECT_DOUBLE_EQ(b.spawn_cycles, 0);  // nothing parallel
  EXPECT_GT(b.total_cycles, 0);
}

TEST(MachineModel, DeterministicAcrossCalls) {
  const ir::Program p = tiny_matmul(64);
  MachineModel m;
  EXPECT_DOUBLE_EQ(m.execution_time_seconds(p), m.execution_time_seconds(p));
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

TEST(Executor, NoiseFreeMatchesModel) {
  const ir::Program p = tiny_matmul(32);
  ExecutorOptions opts;
  opts.noise_sigma = 0.0;
  Executor e{MachineModel(), opts};
  EXPECT_DOUBLE_EQ(e.measure_seconds(p), e.exact_seconds(p));
}

TEST(Executor, MedianOfRunsShrinksNoise) {
  const ir::Program p = tiny_matmul(32);
  ExecutorOptions noisy;
  noisy.noise_sigma = 0.2;
  noisy.runs_per_measurement = 30;
  Executor e{MachineModel(), noisy, 7};
  const double exact = e.exact_seconds(p);
  for (int i = 0; i < 20; ++i) {
    const double measured = e.measure_seconds(p);
    EXPECT_NEAR(measured / exact, 1.0, 0.15);  // median-of-30 is tight
  }
}

TEST(Executor, SpeedupOfIdentityIsAboutOne) {
  const ir::Program p = tiny_matmul(32);
  Executor e;
  EXPECT_NEAR(e.measure_speedup(p, {}), 1.0, 0.05);
}

TEST(Executor, EvaluationCostIncludesCompileAndRuns) {
  Executor e;
  const double cost = e.evaluation_cost_seconds(0.5);
  EXPECT_DOUBLE_EQ(cost, 3.0 + 30 * 0.5);
}

TEST(Executor, DeterministicInSeed) {
  const ir::Program p = tiny_matmul(32);
  Executor a{MachineModel(), {}, 11};
  Executor b{MachineModel(), {}, 11};
  EXPECT_DOUBLE_EQ(a.measure_seconds(p), b.measure_seconds(p));
}

}  // namespace
}  // namespace tcm::sim
