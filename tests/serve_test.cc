// Tests for the batched inference serving subsystem (src/serve/).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "datagen/generator.h"
#include "model/cost_model.h"
#include "nn/inference.h"
#include "serve/batcher.h"
#include "serve/drift_monitor.h"
#include "serve/feature_cache.h"
#include "serve/feedback_buffer.h"
#include "serve/fingerprint.h"
#include "search/evaluator.h"
#include "serve/prediction_service.h"

namespace tcm::serve {
namespace {

ir::Program test_program(std::uint64_t seed = 0) {
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  return gen.generate(seed);
}

std::shared_ptr<const model::FeaturizedProgram> featurize_or_die(
    const ir::Program& p, const transforms::Schedule& s) {
  std::string error;
  auto feats = model::featurize(p, s, model::FeatureConfig::fast(), &error);
  if (!feats) throw std::runtime_error("test featurization failed: " + error);
  return std::make_shared<const model::FeaturizedProgram>(std::move(*feats));
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

TEST(Fingerprint, ProgramDeterministicAndNameInvariant) {
  ir::Program a = test_program(1);
  ir::Program b = test_program(1);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  b.name = "renamed";
  EXPECT_EQ(fingerprint(a), fingerprint(b));  // labels are not semantic
}

TEST(Fingerprint, DistinguishesPrograms) {
  EXPECT_NE(fingerprint(test_program(1)), fingerprint(test_program(2)));
}

TEST(Fingerprint, DistinguishesSchedules) {
  transforms::Schedule empty;
  transforms::Schedule par;
  par.parallels.push_back({0, 0});
  transforms::Schedule unroll;
  unroll.unrolls.push_back({0, 2});
  EXPECT_NE(fingerprint(empty), fingerprint(par));
  EXPECT_NE(fingerprint(par), fingerprint(unroll));
  EXPECT_EQ(fingerprint(par), fingerprint(par));
}

TEST(Fingerprint, ScheduleFieldOrderMatters) {
  transforms::Schedule a, b;
  a.tiles.push_back({0, 0, {4, 8}});
  b.tiles.push_back({0, 0, {8, 4}});
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

// ---------------------------------------------------------------------------
// FeatureCache
// ---------------------------------------------------------------------------

TEST(FeatureCache, HitAfterPut) {
  FeatureCache cache(4);
  const PairKey key{1, 2};
  EXPECT_EQ(cache.get(key), nullptr);
  auto feats = featurize_or_die(test_program(), {});
  cache.put(key, feats);
  EXPECT_EQ(cache.get(key), feats);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(FeatureCache, EvictsLeastRecentlyUsed) {
  FeatureCache cache(2);
  auto feats = featurize_or_die(test_program(), {});
  cache.put({1, 0}, feats);
  cache.put({2, 0}, feats);
  EXPECT_NE(cache.get({1, 0}), nullptr);  // touch 1: now 2 is the LRU entry
  cache.put({3, 0}, feats);               // evicts 2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.get({2, 0}), nullptr);
  EXPECT_NE(cache.get({1, 0}), nullptr);
  EXPECT_NE(cache.get({3, 0}), nullptr);
}

TEST(FeatureCache, ZeroCapacityDisables) {
  FeatureCache cache(0);
  auto feats = featurize_or_die(test_program(), {});
  EXPECT_EQ(cache.put({1, 0}, feats), feats);  // pass-through
  EXPECT_EQ(cache.get({1, 0}), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// StructureBatcher
// ---------------------------------------------------------------------------

PendingRequest make_request(std::shared_ptr<const model::FeaturizedProgram> feats) {
  PendingRequest req;
  req.feats = std::move(feats);
  req.enqueued = std::chrono::steady_clock::now();
  return req;
}

TEST(StructureBatcher, FullBatchPopsImmediately) {
  StructureBatcher batcher(2, std::chrono::microseconds(60'000'000));  // 1 min: no timer flush
  auto feats = featurize_or_die(test_program(), {});
  batcher.enqueue(make_request(feats));
  batcher.enqueue(make_request(feats));
  const auto batch = batcher.next_batch();  // would block forever if not ready
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batcher.pending(), 0u);
}

TEST(StructureBatcher, MaxLatencyFlushesPartialBatch) {
  StructureBatcher batcher(64, std::chrono::microseconds(2000));
  auto feats = featurize_or_die(test_program(), {});
  const auto t0 = std::chrono::steady_clock::now();
  batcher.enqueue(make_request(feats));
  const auto batch = batcher.next_batch();  // must return after ~2ms, not hang
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_GE(waited, std::chrono::microseconds(1500));
  EXPECT_LT(waited, std::chrono::seconds(10));
}

TEST(StructureBatcher, FlushMakesPartialBatchReady) {
  StructureBatcher batcher(64, std::chrono::microseconds(60'000'000));
  auto feats = featurize_or_die(test_program(), {});
  batcher.enqueue(make_request(feats));
  batcher.flush();
  EXPECT_EQ(batcher.next_batch().size(), 1u);
}

TEST(StructureBatcher, KeepsStructuresApart) {
  // Schedules with different fusion/tiling decisions produce different trees;
  // use two different programs for a guaranteed structure mismatch.
  auto feats_a = featurize_or_die(test_program(1), {});
  auto feats_b = featurize_or_die(test_program(2), {});
  ASSERT_FALSE(feats_a->same_structure(*feats_b));
  StructureBatcher batcher(8, std::chrono::microseconds(0));
  batcher.enqueue(make_request(feats_a));
  batcher.enqueue(make_request(feats_b));
  batcher.enqueue(make_request(feats_a));
  const auto first = batcher.next_batch();
  const auto second = batcher.next_batch();
  ASSERT_EQ(first.size() + second.size(), 3u);
  for (const auto& req : first) EXPECT_TRUE(req.feats->same_structure(*first.front().feats));
  for (const auto& req : second) EXPECT_TRUE(req.feats->same_structure(*second.front().feats));
}

TEST(StructureBatcher, CloseDrainsThenSignalsExit) {
  StructureBatcher batcher(64, std::chrono::microseconds(60'000'000));
  auto feats = featurize_or_die(test_program(), {});
  batcher.enqueue(make_request(feats));
  batcher.close();
  EXPECT_EQ(batcher.next_batch().size(), 1u);  // drained despite huge latency
  EXPECT_TRUE(batcher.next_batch().empty());   // exit signal
  EXPECT_THROW(batcher.enqueue(make_request(feats)), std::runtime_error);
}

// ---------------------------------------------------------------------------
// PredictionService
// ---------------------------------------------------------------------------

ServeOptions fast_options(int threads) {
  ServeOptions options;
  options.num_threads = threads;
  options.features = model::FeatureConfig::fast();
  options.max_queue_latency = std::chrono::microseconds(500);
  return options;
}

TEST(PredictionService, SingleRequestCompletesViaLatencyFlush) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  ServeOptions options = fast_options(1);
  options.max_batch = 64;  // never fills: completion relies on the timer
  PredictionService service(cost_model, options);
  auto future = service.submit(test_program(), transforms::Schedule{});
  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)), std::future_status::ready);
  const Prediction pred = future.get();
  EXPECT_GT(pred.speedup, 0.0);  // exp head keeps predictions positive
  EXPECT_EQ(pred.model_version, 0);  // non-owning constructor: unversioned
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_GT(stats.p99_latency, 0.0);
}

TEST(PredictionService, RepeatedPairHitsFeatureCache) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  PredictionService service(cost_model, fast_options(1));
  const ir::Program p = test_program();
  transforms::Schedule s;
  s.parallels.push_back({0, 0});
  const double first = service.submit(p, s).get().speedup;
  const double second = service.submit(p, s).get().speedup;
  EXPECT_EQ(first, second);
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(PredictionService, FeaturizationFailureSurfacesOnFuture) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  ServeOptions options = fast_options(1);
  options.features.max_accesses = 0;  // any RHS load now exceeds the limit
  PredictionService service(cost_model, options);
  auto future = service.submit(test_program(), transforms::Schedule{});
  EXPECT_THROW(future.get(), std::invalid_argument);
  EXPECT_EQ(service.stats().failed_requests, 1u);
}

TEST(PredictionService, PredictManyMatchesSubmitOrder) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  PredictionService service(cost_model, fast_options(2));
  const ir::Program p = test_program();
  datagen::RandomScheduleGenerator sgen;
  Rng srng(3);
  std::vector<transforms::Schedule> candidates;
  for (int i = 0; i < 12; ++i) candidates.push_back(sgen.generate(p, srng));
  const std::vector<double> batched = service.predict_many(p, candidates);
  ASSERT_EQ(batched.size(), candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i)
    EXPECT_EQ(batched[i], service.submit(p, candidates[i]).get().speedup);
}

// The tentpole correctness property: hammering the service from N client
// threads yields bitwise-identical results to direct single-threaded
// infer_batch calls (the same tape-free engine the workers run), for every
// request, whatever batch compositions the dynamic batcher happens to form.
TEST(PredictionService, HammerMatchesDirectInferenceBitwise) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);

  // Mixed-structure request set: 4 programs x 8 schedules.
  struct Case {
    ir::Program program;
    std::vector<transforms::Schedule> schedules;
    std::vector<double> expected;
  };
  datagen::RandomScheduleGenerator sgen;
  std::vector<Case> cases;
  Rng srng(11);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Case c;
    c.program = test_program(seed);
    for (int i = 0; i < 8; ++i) c.schedules.push_back(sgen.generate(c.program, srng));
    cases.push_back(std::move(c));
  }

  // Reference: one infer_batch per request, batch size 1, single thread.
  nn::InferenceArena eval_arena;
  for (Case& c : cases) {
    for (const transforms::Schedule& s : c.schedules) {
      auto feats = featurize_or_die(c.program, s);
      const model::Batch single = model::make_inference_batch({feats.get()});
      const nn::Tensor& pred = cost_model.infer_batch(single, eval_arena);
      c.expected.push_back(static_cast<double>(pred.at(0, 0)));
    }
  }

  // Hammer: 4 client threads x 3 rounds over all cases, against 4 workers
  // with small batches so requests from different clients interleave.
  ServeOptions options = fast_options(4);
  options.max_batch = 8;
  PredictionService service(cost_model, options);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        // Stagger the case order per client so structures interleave.
        for (std::size_t ci = 0; ci < cases.size(); ++ci) {
          const Case& c = cases[(ci + static_cast<std::size_t>(t)) % cases.size()];
          std::vector<std::future<Prediction>> futures;
          futures.reserve(c.schedules.size());
          for (const transforms::Schedule& s : c.schedules)
            futures.push_back(service.submit(c.program, s));
          service.flush();
          for (std::size_t i = 0; i < futures.size(); ++i)
            if (futures[i].get().speedup != c.expected[i]) ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.requests, 4u * 3u * 4u * 8u);
  EXPECT_EQ(stats.failed_requests, 0u);
  EXPECT_GT(stats.mean_batch_occupancy, 1.0);  // batching actually happened
  // Arena path was exercised (the precise steady-state zero-allocation
  // property is asserted in inference_test, where warm-up is controlled).
  EXPECT_GT(stats.arena_heap_allocs, 0u);
  // Every submit probes the cache exactly once. The distinct-pair count is at
  // most 32 (the schedule generator may emit duplicates) and concurrent
  // clients can each miss a pair once before the first insert lands, so
  // misses are bounded by clients x pairs and the rest must be hits.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.requests);
  EXPECT_LE(stats.cache_misses, 4u * 32u);
  EXPECT_GE(stats.cache_hits, 4u * 3u * 32u - 4u * 32u);
}

// The legacy autograd path stays available behind use_fused_inference=false
// and must agree bitwise with direct forward_batch (its historical
// contract), and within 1e-5 relative error with the fused default.
TEST(PredictionService, LegacyAutogradPathMatchesForwardBatch) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  const ir::Program p = test_program();
  datagen::RandomScheduleGenerator sgen;
  Rng srng(5);
  std::vector<transforms::Schedule> candidates;
  for (int i = 0; i < 8; ++i) candidates.push_back(sgen.generate(p, srng));

  ServeOptions legacy = fast_options(2);
  legacy.use_fused_inference = false;
  PredictionService legacy_service(cost_model, legacy);
  const std::vector<double> from_legacy = legacy_service.predict_many(p, candidates);
  EXPECT_EQ(legacy_service.stats().arena_heap_allocs, 0u);  // arena untouched

  PredictionService fused_service(cost_model, fast_options(2));
  const std::vector<double> from_fused = fused_service.predict_many(p, candidates);

  Rng eval_rng(0);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    auto feats = featurize_or_die(p, candidates[i]);
    const model::Batch single = model::make_inference_batch({feats.get()});
    const double ref = static_cast<double>(
        cost_model.forward_batch(single, /*training=*/false, eval_rng).value().at(0, 0));
    EXPECT_EQ(from_legacy[i], ref);
    EXPECT_NEAR(from_fused[i] / ref, 1.0, 1e-5);
  }
}

// ---------------------------------------------------------------------------
// Hot-swap and shadow mode
// ---------------------------------------------------------------------------

// Single-row reference prediction, bypassing the service (same tape-free
// engine the service workers run, so values match bitwise).
double direct_prediction(model::SpeedupPredictor& m, const model::FeaturizedProgram& feats) {
  const model::Batch single = model::make_inference_batch({&feats});
  nn::InferenceArena arena;
  return static_cast<double>(m.infer_batch(single, arena).at(0, 0));
}

TEST(PredictionService, SwapModelRoutesNewTrafficToNewModel) {
  Rng rng_a(7), rng_b(8);
  auto a = std::make_shared<model::CostModel>(model::ModelConfig::fast(), rng_a);
  auto b = std::make_shared<model::CostModel>(model::ModelConfig::fast(), rng_b);
  const ir::Program p = test_program();
  auto feats = featurize_or_die(p, {});
  const double expect_a = direct_prediction(*a, *feats);
  const double expect_b = direct_prediction(*b, *feats);
  ASSERT_NE(expect_a, expect_b);  // different inits -> distinguishable models

  PredictionService service(a, /*version=*/1, fast_options(1));
  EXPECT_EQ(service.active_version(), 1);
  Prediction before = service.submit(feats).get();
  EXPECT_EQ(before.model_version, 1);
  EXPECT_EQ(before.speedup, expect_a);

  service.swap_model(b, /*version=*/2);
  EXPECT_EQ(service.active_version(), 2);
  Prediction after = service.submit(feats).get();
  EXPECT_EQ(after.model_version, 2);
  EXPECT_EQ(after.speedup, expect_b);
  EXPECT_EQ(service.stats().model_swaps, 1u);
}

// The tentpole hot-swap property: under concurrent submit() load, swapping
// models never drops or errors a request, and every response is attributable
// to exactly one version — its value must bitwise-match the reference
// prediction of the model its version tag names. A torn swap (batch built
// with one model, tagged with another) would fail the cross-check.
TEST(PredictionService, HotSwapUnderLoadNeverMixesModels) {
  Rng rng_a(7), rng_b(8);
  auto a = std::make_shared<model::CostModel>(model::ModelConfig::fast(), rng_a);
  auto b = std::make_shared<model::CostModel>(model::ModelConfig::fast(), rng_b);

  // Mixed-structure request set with per-model reference predictions.
  struct Case {
    std::shared_ptr<const model::FeaturizedProgram> feats;
    double expected_a = 0, expected_b = 0;
  };
  datagen::RandomScheduleGenerator sgen;
  Rng srng(11);
  std::vector<Case> cases;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const ir::Program p = test_program(seed);
    for (int i = 0; i < 6; ++i) {
      Case c;
      c.feats = featurize_or_die(p, sgen.generate(p, srng));
      c.expected_a = direct_prediction(*a, *c.feats);
      c.expected_b = direct_prediction(*b, *c.feats);
      cases.push_back(std::move(c));
    }
  }

  ServeOptions options = fast_options(4);
  options.max_batch = 8;
  PredictionService service(a, /*version=*/1, options);

  std::atomic<bool> stop{false};
  std::atomic<int> wrong_version{0};
  std::atomic<int> value_version_mismatch{0};
  std::atomic<int> errors{0};
  std::atomic<std::uint64_t> completed{0};

  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      std::vector<std::future<Prediction>> futures;
      while (!stop.load(std::memory_order_relaxed)) {
        futures.clear();
        for (const Case& c : cases) futures.push_back(service.submit(c.feats));
        service.flush();
        for (std::size_t i = 0; i < futures.size(); ++i) {
          try {
            const Prediction pred = futures[i].get();
            if (pred.model_version != 1 && pred.model_version != 2) ++wrong_version;
            const double expected =
                pred.model_version == 1 ? cases[i].expected_a : cases[i].expected_b;
            if (pred.speedup != expected) ++value_version_mismatch;
            ++completed;
          } catch (...) {
            ++errors;
          }
        }
      }
    });
  }

  // Swap back and forth while the clients hammer the service.
  int swaps = 0;
  for (; swaps < 40; ++swaps) {
    std::this_thread::sleep_for(std::chrono::microseconds(700));
    if (swaps % 2 == 0)
      service.swap_model(b, 2);
    else
      service.swap_model(a, 1);
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();

  EXPECT_GT(completed.load(), 0u);
  EXPECT_EQ(errors.load(), 0);                   // never drops or errors
  EXPECT_EQ(wrong_version.load(), 0);            // only the two live versions
  EXPECT_EQ(value_version_mismatch.load(), 0);   // value matches its version tag
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.failed_requests, 0u);
  EXPECT_EQ(stats.requests, completed.load());
  EXPECT_EQ(stats.model_swaps, static_cast<std::uint64_t>(swaps));
}

TEST(PredictionService, ShadowModeRecordsDisagreementWithoutTouchingClients) {
  Rng rng_a(7), rng_b(8);
  auto a = std::make_shared<model::CostModel>(model::ModelConfig::fast(), rng_a);
  auto b = std::make_shared<model::CostModel>(model::ModelConfig::fast(), rng_b);

  const ir::Program p = test_program();
  datagen::RandomScheduleGenerator sgen;
  Rng srng(5);
  std::vector<std::shared_ptr<const model::FeaturizedProgram>> requests;
  for (int i = 0; i < 16; ++i) requests.push_back(featurize_or_die(p, sgen.generate(p, srng)));

  PredictionService service(a, /*version=*/1, fast_options(2));
  service.set_shadow(b, /*version=*/2, /*sample_fraction=*/1.0);

  std::vector<std::future<Prediction>> futures;
  for (const auto& f : requests) futures.push_back(service.submit(f));
  service.flush();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Prediction pred = futures[i].get();
    EXPECT_EQ(pred.model_version, 1);  // clients always get the incumbent
    EXPECT_EQ(pred.speedup, direct_prediction(*a, *requests[i]));
  }

  service.quiesce();  // shadow scoring runs after the client promises resolve
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.shadow_version, 2);
  EXPECT_EQ(stats.shadow_requests, requests.size());  // fraction 1.0: all scored
  EXPECT_EQ(stats.shadow_failures, 0u);
  EXPECT_GT(stats.shadow_mape, 0.0);  // different models disagree
  EXPECT_GE(stats.shadow_spearman, -1.0);
  EXPECT_LE(stats.shadow_spearman, 1.0);

  // A shadow identical to the incumbent shows zero disagreement and perfect
  // rank agreement (set_shadow resets the stats).
  service.set_shadow(a, /*version=*/1, 1.0);
  futures.clear();
  for (const auto& f : requests) futures.push_back(service.submit(f));
  service.flush();
  for (auto& f : futures) f.get();
  service.quiesce();
  const ServeStats self = service.stats();
  EXPECT_EQ(self.shadow_requests, requests.size());
  EXPECT_EQ(self.shadow_mape, 0.0);
  EXPECT_EQ(self.shadow_spearman, 1.0);

  service.clear_shadow();
  EXPECT_EQ(service.stats().shadow_version, 0);
}

// ModelEvaluator rides on the service and must agree with it exactly.
TEST(PredictionService, ModelEvaluatorMatchesService) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  const ir::Program p = test_program();
  datagen::RandomScheduleGenerator sgen;
  Rng srng(5);
  std::vector<transforms::Schedule> candidates;
  for (int i = 0; i < 6; ++i) candidates.push_back(sgen.generate(p, srng));

  search::ModelEvaluator evaluator(&cost_model, model::FeatureConfig::fast());
  const std::vector<double> from_evaluator = evaluator.evaluate(p, candidates);
  EXPECT_EQ(evaluator.evaluations(), 6);
  EXPECT_GT(evaluator.accounted_seconds(), 0.0);

  PredictionService service(cost_model, fast_options(1));
  const std::vector<double> from_service = service.predict_many(p, candidates);
  ASSERT_EQ(from_evaluator.size(), from_service.size());
  for (std::size_t i = 0; i < from_service.size(); ++i)
    EXPECT_EQ(from_evaluator[i], from_service[i]);
}

// ---------------------------------------------------------------------------
// ServeStats derived metrics: reading before any traffic must be all finite
// zeros, never a division by zero or NaN.
// ---------------------------------------------------------------------------

TEST(PredictionService, StatsBeforeAnyTrafficAreFiniteZeros) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  PredictionService service(cost_model, fast_options(1));
  // Install a shadow too: its derived metrics must be just as safe to read
  // before the first shadow-scored batch.
  auto shadow = std::make_shared<model::CostModel>(model::ModelConfig::fast(), rng);
  service.set_shadow(shadow, 42);

  const ServeStats s = service.stats();
  EXPECT_EQ(s.requests, 0u);
  EXPECT_EQ(s.batches, 0u);
  for (double v : {s.mean_batch_occupancy, s.p50_latency, s.p99_latency, s.shadow_mape,
                   s.shadow_spearman}) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_EQ(v, 0.0);
  }
  EXPECT_TRUE(service.recent_predictions().empty());
}

TEST(PredictionService, RecentPredictionsWindowTracksServedTraffic) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  ServeOptions options = fast_options(1);
  options.prediction_window = 8;  // smaller than the traffic: ring must wrap
  PredictionService service(cost_model, options);
  const ir::Program p = test_program();
  datagen::RandomScheduleGenerator sgen;
  Rng srng(11);
  std::vector<transforms::Schedule> candidates;
  for (int i = 0; i < 20; ++i) candidates.push_back(sgen.generate(p, srng));
  const std::vector<double> served = service.predict_many(p, candidates);
  service.quiesce();

  const std::vector<double> window = service.recent_predictions();
  EXPECT_EQ(window.size(), 8u);  // capped at prediction_window
  for (double w : window)
    EXPECT_NE(std::find(served.begin(), served.end(), w), served.end());

  service.clear_recent_predictions();
  EXPECT_TRUE(service.recent_predictions().empty());
}

// ---------------------------------------------------------------------------
// FeedbackBuffer
// ---------------------------------------------------------------------------

TEST(FeedbackBuffer, ReservoirBoundsAndDrainResets) {
  FeedbackBufferOptions options;
  options.capacity = 4;
  options.sample_fraction = 1.0;
  FeedbackBuffer buffer(options);
  const ir::Program p = test_program();
  for (int i = 0; i < 10; ++i) buffer.offer(p, transforms::Schedule{});
  EXPECT_EQ(buffer.offered(), 10u);
  EXPECT_EQ(buffer.sampled(), 10u);
  EXPECT_EQ(buffer.size(), 4u);  // reservoir never exceeds capacity

  const std::vector<ServedSample> drained = buffer.drain();
  EXPECT_EQ(drained.size(), 4u);
  EXPECT_EQ(buffer.size(), 0u);
  // The stream restarts: the next offers fill a fresh reservoir.
  buffer.offer(p, transforms::Schedule{});
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(FeedbackBuffer, SampleFractionZeroNeverCopies) {
  FeedbackBufferOptions options;
  options.sample_fraction = 0.0;
  FeedbackBuffer buffer(options);
  const ir::Program p = test_program();
  for (int i = 0; i < 50; ++i) buffer.offer(p, transforms::Schedule{});
  EXPECT_EQ(buffer.offered(), 50u);
  EXPECT_EQ(buffer.sampled(), 0u);
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(PredictionService, FeedbackTapSamplesRawSubmissions) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  PredictionService service(cost_model, fast_options(1));
  FeedbackBufferOptions foptions;
  foptions.capacity = 64;
  foptions.sample_fraction = 1.0;
  auto buffer = std::make_shared<FeedbackBuffer>(foptions);
  service.set_feedback(buffer);

  const ir::Program p = test_program();
  datagen::RandomScheduleGenerator sgen;
  Rng srng(13);
  std::vector<transforms::Schedule> candidates;
  for (int i = 0; i < 6; ++i) candidates.push_back(sgen.generate(p, srng));
  service.predict_many(p, candidates);
  EXPECT_EQ(buffer->offered(), 6u);
  EXPECT_EQ(buffer->size(), 6u);

  // Pre-featurized submissions carry no program and must bypass the tap.
  auto future = service.submit(featurize_or_die(p, candidates[0]));
  service.flush();
  future.get();
  EXPECT_EQ(buffer->offered(), 6u);

  service.set_feedback(nullptr);
  service.predict_many(p, candidates);
  EXPECT_EQ(buffer->offered(), 6u);  // detached
}

// ---------------------------------------------------------------------------
// DriftMonitor
// ---------------------------------------------------------------------------

std::vector<double> synthetic_distribution(std::size_t n, double mean, double stddev,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.normal(mean, stddev));
  return xs;
}

DriftMonitorOptions tight_drift_options() {
  DriftMonitorOptions options;
  options.min_samples = 32;
  options.cooldown_observations = 3;
  return options;
}

TEST(DriftMonitor, PsiAndKsSeparateShiftedFromIdentical) {
  const std::vector<double> ref = synthetic_distribution(512, 1.0, 0.2, 1);
  const std::vector<double> same = synthetic_distribution(512, 1.0, 0.2, 2);
  const std::vector<double> shifted = synthetic_distribution(512, 2.5, 0.2, 3);
  EXPECT_LT(DriftMonitor::psi(ref, same, 10), 0.1);
  EXPECT_GT(DriftMonitor::psi(ref, shifted, 10), 1.0);
  EXPECT_LT(DriftMonitor::ks_statistic(ref, same), 0.1);
  EXPECT_GT(DriftMonitor::ks_statistic(ref, shifted), 0.9);

  // Ties must not inflate KS: identical windows dominated by one repeated
  // value (a cache-hot workload re-serving the same predictions) measure
  // exactly zero shift.
  std::vector<double> tied(100, 1.0);
  for (int i = 0; i < 20; ++i) tied[static_cast<std::size_t>(i)] = 2.0 + 0.01 * i;
  EXPECT_EQ(DriftMonitor::ks_statistic(tied, tied), 0.0);
}

TEST(DriftMonitor, ShortWindowsNeverFireOrProduceNaN) {
  DriftMonitor monitor(tight_drift_options());
  ServeStats stats;
  // 0 and 1 samples: below every minimum, including the degenerate < 2.
  for (const std::vector<double> window : {std::vector<double>{}, std::vector<double>{1.0}}) {
    const DriftReport report = monitor.observe(stats, window);
    EXPECT_FALSE(report.drifted);
    EXPECT_FALSE(report.triggered);
    EXPECT_EQ(report.reference_size, 0u);
    for (double v : {report.psi.value, report.ks.value, report.failure_rate.value,
                     report.shadow_mape.value, report.shadow_spearman.value})
      EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_FALSE(monitor.baselined());
}

TEST(DriftMonitor, ShiftedDistributionTriggersExactlyOncePerCooldown) {
  DriftMonitor monitor(tight_drift_options());
  ServeStats stats;
  const std::vector<double> calm = synthetic_distribution(256, 1.0, 0.2, 4);
  const std::vector<double> shifted = synthetic_distribution(256, 3.0, 0.2, 5);

  // First adequate window freezes the baseline and never triggers.
  DriftReport report = monitor.observe(stats, calm);
  EXPECT_TRUE(monitor.baselined());
  EXPECT_FALSE(report.triggered);

  // Same distribution: quiet.
  report = monitor.observe(stats, synthetic_distribution(256, 1.0, 0.2, 6));
  EXPECT_FALSE(report.drifted);

  // Sustained shift: drifted on every observation, triggered exactly once
  // per cooldown window (cooldown_observations = 3).
  int triggers = 0;
  std::vector<int> trigger_indices;
  for (int i = 0; i < 8; ++i) {
    report = monitor.observe(stats, shifted);
    EXPECT_TRUE(report.drifted) << i;
    EXPECT_TRUE(report.psi.fired || report.ks.fired);
    if (report.triggered) {
      ++triggers;
      trigger_indices.push_back(i);
    }
  }
  ASSERT_EQ(trigger_indices.size(), 2u);          // observations 0 and 4
  EXPECT_EQ(trigger_indices[1] - trigger_indices[0], 4);  // 3 suppressed between
  EXPECT_EQ(triggers, 2);

  // Rebaseline forgets the reference and the cooldown: the shifted
  // distribution becomes the new normal.
  monitor.rebaseline();
  EXPECT_FALSE(monitor.baselined());
  report = monitor.observe(stats, shifted);  // freezes new baseline
  EXPECT_FALSE(report.triggered);
  report = monitor.observe(stats, shifted);
  EXPECT_FALSE(report.drifted);
}

TEST(DriftMonitor, FailureRateSignalRespectsMinimumVolume) {
  DriftMonitorOptions options = tight_drift_options();
  options.max_failure_rate = 0.05;
  options.min_failure_volume = 100;
  DriftMonitor monitor(options);
  const std::vector<double> calm = synthetic_distribution(64, 1.0, 0.2, 7);

  ServeStats stats;
  stats.requests = 1000;
  stats.failed_requests = 10;
  monitor.observe(stats, calm);  // baseline

  // 50 more requests, all failed: rate 100% but volume below the floor.
  stats.requests = 1000;
  stats.failed_requests = 60;
  DriftReport report = monitor.observe(stats, calm);
  EXPECT_FALSE(report.failure_rate.fired);

  // Volume now suffices and the rate is far over the 5% bound.
  stats.requests = 1040;
  stats.failed_requests = 70;
  report = monitor.observe(stats, calm);
  EXPECT_TRUE(report.failure_rate.fired);
  EXPECT_TRUE(report.triggered);
  EXPECT_NE(report.reason.find("failure_rate"), std::string::npos);
}

TEST(DriftMonitor, ShadowDisagreementSignals) {
  DriftMonitorOptions options = tight_drift_options();
  options.max_shadow_mape = 0.3;
  options.min_shadow_spearman = 0.5;
  options.min_shadow_requests = 10;
  DriftMonitor monitor(options);
  const std::vector<double> calm = synthetic_distribution(64, 1.0, 0.2, 8);
  ServeStats stats;
  monitor.observe(stats, calm);  // baseline

  stats.shadow_requests = 5;  // below the floor: quiet
  stats.shadow_mape = 0.9;
  stats.shadow_spearman = -1.0;
  EXPECT_FALSE(monitor.observe(stats, calm).drifted);

  stats.shadow_requests = 50;
  const DriftReport report = monitor.observe(stats, calm);
  EXPECT_TRUE(report.shadow_mape.fired);
  EXPECT_TRUE(report.shadow_spearman.fired);
  EXPECT_TRUE(report.triggered);
}

}  // namespace
}  // namespace tcm::serve
