// End-to-end integration tests: the full paper pipeline at miniature scale.
#include <gtest/gtest.h>

#include <cmath>
#include "support/stats.h"

#include "benchsuite/benchmarks.h"
#include "datagen/dataset_builder.h"
#include "model/train.h"
#include "search/beam_search.h"
#include "search/mcts.h"
#include "transforms/apply.h"

namespace tcm {
namespace {

// Shared fixture: one small dataset + a briefly trained model, built once.
class Pipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::DatasetBuildOptions opt;
    opt.num_programs = 80;
    opt.schedules_per_program = 12;
    opt.features = model::FeatureConfig::fast();
    dataset_ = new model::Dataset(datagen::build_dataset(opt));
    split_ = new model::DatasetSplit(model::split_by_program(*dataset_, 0.7, 0.15, 3));
    Rng rng(17);
    cost_model_ = new model::CostModel(model::ModelConfig::fast(), rng);
    model::TrainOptions topt;
    topt.epochs = 50;
    topt.max_lr = 1e-3;
    train_result_ = new model::TrainResult(
        model::train_model(*cost_model_, split_->train, &split_->validation, topt));
  }

  static void TearDownTestSuite() {
    delete train_result_;
    delete cost_model_;
    delete split_;
    delete dataset_;
  }

  static model::Dataset* dataset_;
  static model::DatasetSplit* split_;
  static model::CostModel* cost_model_;
  static model::TrainResult* train_result_;
};

model::Dataset* Pipeline::dataset_ = nullptr;
model::DatasetSplit* Pipeline::split_ = nullptr;
model::CostModel* Pipeline::cost_model_ = nullptr;
model::TrainResult* Pipeline::train_result_ = nullptr;

TEST_F(Pipeline, TrainingLossDecreasesSubstantially) {
  ASSERT_GT(train_result_->train_loss.size(), 0u);
  EXPECT_LT(train_result_->train_loss.back(), 0.6 * train_result_->train_loss.front());
}

TEST_F(Pipeline, TestSetMetricsAreReasonable) {
  const model::EvalMetrics m = model::evaluate(*cost_model_, split_->test);
  // Miniature-scale counterpart of the paper's 16% MAPE / 0.90 / 0.95: at
  // this data and training budget we only insist on clear predictive power.
  EXPECT_GT(m.spearman, 0.3) << "spearman " << m.spearman;
  EXPECT_GT(m.pearson, 0.15) << "pearson " << m.pearson;
  EXPECT_LT(m.mape, 10.0);
}

TEST_F(Pipeline, ErrorIsSmallerNearSpeedupOne) {
  // Figure 5's shape: APE smaller for speedups near 1 than in the tails.
  const auto preds = model::predict(*cost_model_, split_->test);
  std::vector<double> ape_near, ape_far;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const double y = split_->test.points[i].speedup;
    const double err = std::abs(y - preds[i]) / y;
    if (y > 0.5 && y < 2.0) ape_near.push_back(err);
    else ape_far.push_back(err);
  }
  ASSERT_GT(ape_near.size(), 5u);
  ASSERT_GT(ape_far.size(), 5u);
  EXPECT_LT(mean(ape_near), mean(ape_far));
}

TEST_F(Pipeline, ModelGuidedBeamSearchFindsRealSpeedup) {
  const ir::Program p = benchsuite::make_heat2d(512, 512);
  search::ModelEvaluator model_eval(cost_model_, model::FeatureConfig::fast());
  search::BeamSearchOptions opt;
  opt.beam_width = 2;
  const auto result = search::beam_search(p, model_eval, opt);
  ASSERT_TRUE(transforms::is_legal(p, result.best_schedule));
  // The schedule the model picked must yield a real measured speedup.
  sim::Executor exec;
  const double measured = exec.measure_speedup(p, result.best_schedule);
  EXPECT_GT(measured, 1.5);
}

TEST_F(Pipeline, ModelSearchIsCheaperThanExecutionSearch) {
  const ir::Program p = benchsuite::make_heat2d(512, 512);
  search::BeamSearchOptions opt;
  opt.beam_width = 2;
  search::ExecutionEvaluator exec_eval{sim::Executor()};
  const auto bse = search::beam_search(p, exec_eval, opt);
  search::ModelEvaluator model_eval(cost_model_, model::FeatureConfig::fast());
  const auto bsm = search::beam_search(p, model_eval, opt);
  // Accounted toolchain time: execution pays compile + 30 runs per
  // candidate; the model pays inference wall time. (Table 2's ratio.)
  EXPECT_GT(bse.accounted_seconds, bsm.accounted_seconds);
}

TEST_F(Pipeline, MctsCorrectsModelWithExecution) {
  const ir::Program p = benchsuite::make_heat2d(512, 512);
  search::ModelEvaluator model_eval(cost_model_, model::FeatureConfig::fast());
  search::ExecutionEvaluator exec_eval{sim::Executor()};
  search::MctsOptions opt;
  opt.iterations = 60;
  opt.top_k = 4;
  const auto result = search::mcts_search(p, model_eval, exec_eval, opt);
  ASSERT_TRUE(transforms::is_legal(p, result.best_schedule));
  EXPECT_GT(result.best_measured_speedup, 1.0);
  EXPECT_LE(exec_eval.evaluations(), 4);
}

TEST_F(Pipeline, AblationArchitecturesTrainOnSameData) {
  Rng rng(23);
  model::LstmOnlyModel lstm(model::ModelConfig::fast(), rng);
  model::TrainOptions topt;
  topt.epochs = 8;
  const auto result = model::train_model(lstm, split_->train, nullptr, topt);
  EXPECT_LT(result.train_loss.back(), result.train_loss.front());
  const auto metrics = model::evaluate(lstm, split_->test);
  EXPECT_GT(metrics.spearman, 0.0);
}

}  // namespace
}  // namespace tcm
