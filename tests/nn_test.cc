#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "nn/gradcheck.h"
#include "nn/modules.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "nn/serialize.h"
#include "nn/tensor.h"

namespace tcm::nn {
namespace {

Tensor random_tensor(int r, int c, Rng& rng, double lo = -1.0, double hi = 1.0) {
  Tensor t(r, c);
  for (std::size_t i = 0; i < t.size(); ++i)
    t.data()[i] = static_cast<float>(rng.uniform_real(lo, hi));
  return t;
}

// ---------------------------------------------------------------------------
// Tensor
// ---------------------------------------------------------------------------

TEST(Tensor, ConstructionAndAccess) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6u);
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
}

TEST(Tensor, FactoryHelpers) {
  EXPECT_FLOAT_EQ(Tensor::ones(2, 2).at(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(Tensor::full(1, 1, 3.5f).item(), 3.5f);
  const float vals[] = {1, 2, 3, 4};
  const Tensor t = Tensor::from(2, 2, vals);
  EXPECT_FLOAT_EQ(t.at(1, 0), 3.0f);
  EXPECT_THROW(Tensor::from(2, 2, std::span<const float>(vals, 3)), std::invalid_argument);
}

TEST(Tensor, ItemRequiresScalar) {
  EXPECT_THROW(Tensor(2, 2).item(), std::logic_error);
}

TEST(Tensor, InPlaceOps) {
  Tensor a = Tensor::full(1, 3, 2.0f);
  Tensor b = Tensor::full(1, 3, 1.0f);
  a.add_(b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 3.0f);
  a.add_scaled_(b, -2.0f);
  EXPECT_FLOAT_EQ(a.at(0, 1), 1.0f);
  a.scale_(4.0f);
  EXPECT_FLOAT_EQ(a.at(0, 2), 4.0f);
  Tensor c(2, 2);
  EXPECT_THROW(a.add_(c), std::invalid_argument);
}

TEST(Tensor, MatmulMatchesNaive) {
  Rng rng(1);
  const Tensor a = random_tensor(5, 7, rng);
  const Tensor b = random_tensor(7, 4, rng);
  const Tensor c = matmul(a, b);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) {
      float acc = 0;
      for (int k = 0; k < 7; ++k) acc += a.at(i, k) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), acc, 1e-5);
    }
  }
}

TEST(Tensor, MatmulTransposedVariantsAgree) {
  Rng rng(2);
  const Tensor a = random_tensor(3, 6, rng);
  const Tensor b = random_tensor(6, 5, rng);
  const Tensor ref = matmul(a, b);
  // a * b == matmul_nt(a, b^T)
  Tensor bt(5, 6);
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 5; ++j) bt.at(j, i) = b.at(i, j);
  const Tensor nt = matmul_nt(a, bt);
  // a * b == matmul_tn(a^T, b)
  Tensor at(6, 3);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 6; ++j) at.at(j, i) = a.at(i, j);
  const Tensor tn = matmul_tn(at, b);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 5; ++j) {
      EXPECT_NEAR(nt.at(i, j), ref.at(i, j), 1e-5);
      EXPECT_NEAR(tn.at(i, j), ref.at(i, j), 1e-5);
    }
}

TEST(Tensor, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Tensor(2, 3), Tensor(2, 3)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Autograd: per-op numerical gradient checks
// ---------------------------------------------------------------------------

struct OpCase {
  std::string name;
  int arity;
  std::function<Variable(std::vector<Variable>&)> fn;
  // Per-leaf shapes; defaults to [3,4] for every leaf.
  std::vector<std::pair<int, int>> shapes;
};

class OpGradCheck : public ::testing::TestWithParam<int> {
 public:
  static std::vector<OpCase> cases() {
    std::vector<OpCase> cs;
    cs.push_back({"matmul",
                  2,
                  [](std::vector<Variable>& v) { return mean_all(matmul(v[0], v[1])); },
                  {{3, 4}, {4, 2}}});
    cs.push_back({"add", 2, [](std::vector<Variable>& v) { return mean_all(add(v[0], v[1])); }});
    cs.push_back({"sub", 2, [](std::vector<Variable>& v) { return mean_all(sub(v[0], v[1])); }});
    cs.push_back({"mul", 2, [](std::vector<Variable>& v) { return mean_all(mul(v[0], v[1])); }});
    cs.push_back({"div", 2, [](std::vector<Variable>& v) { return mean_all(div(v[0], v[1])); }});
    cs.push_back({"scale", 1,
                  [](std::vector<Variable>& v) { return mean_all(scale(v[0], 2.5f)); }});
    cs.push_back({"sigmoid", 1,
                  [](std::vector<Variable>& v) { return mean_all(sigmoid(v[0])); }});
    cs.push_back({"tanh", 1, [](std::vector<Variable>& v) { return mean_all(tanh_op(v[0])); }});
    cs.push_back({"elu", 1, [](std::vector<Variable>& v) { return mean_all(elu(v[0])); }});
    cs.push_back({"exp", 1, [](std::vector<Variable>& v) { return mean_all(exp_op(v[0])); }});
    cs.push_back({"exp_bounded", 1, [](std::vector<Variable>& v) {
                    return mean_all(exp_bounded(v[0], 4.0f));
                  }});
    cs.push_back({"concat", 2, [](std::vector<Variable>& v) {
                    return mean_all(concat_cols(v[0], v[1]));
                  }});
    cs.push_back({"slice", 1, [](std::vector<Variable>& v) {
                    return mean_all(slice_cols(v[0], 1, 3));
                  }});
    cs.push_back({"composite", 2, [](std::vector<Variable>& v) {
                    return mean_all(mul(sigmoid(v[0]), tanh_op(v[1])));
                  }});
    cs.push_back({"reused_input", 1, [](std::vector<Variable>& v) {
                    return mean_all(mul(v[0], v[0]));  // gradient doubles
                  }});
    return cs;
  }
};

TEST_P(OpGradCheck, MatchesNumericalGradient) {
  const OpCase c = cases()[static_cast<std::size_t>(GetParam())];
  Rng rng(42 + static_cast<std::uint64_t>(GetParam()));
  std::vector<Variable> leaves;
  for (int i = 0; i < c.arity; ++i) {
    const auto [r, col] = i < static_cast<int>(c.shapes.size())
                              ? c.shapes[static_cast<std::size_t>(i)]
                              : std::pair<int, int>{3, 4};
    // Positive-ish inputs keep div well conditioned; offsets avoid the
    // non-differentiable kinks of elu/abs at 0.
    leaves.push_back(Variable::leaf(random_tensor(r, col, rng, 0.2, 1.2)));
  }
  const auto result = grad_check(c.fn, leaves, 1e-3, 5e-2);
  EXPECT_TRUE(result.ok) << c.name << ": max rel err " << result.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpGradCheck,
                         ::testing::Range(0, static_cast<int>(OpGradCheck::cases().size())));

TEST(Autograd, LossGradChecks) {
  Rng rng(3);
  Tensor target = random_tensor(4, 1, rng, 0.5, 2.0);
  std::vector<Variable> leaves{Variable::leaf(random_tensor(4, 1, rng, 0.5, 2.0))};
  auto mape_fn = [&](std::vector<Variable>& v) { return mape_loss(v[0], target); };
  EXPECT_TRUE(grad_check(mape_fn, leaves, 1e-3, 5e-2).ok);
  auto mse_fn = [&](std::vector<Variable>& v) { return mse_loss(v[0], target); };
  EXPECT_TRUE(grad_check(mse_fn, leaves, 1e-3, 5e-2).ok);
  auto lr_fn = [&](std::vector<Variable>& v) { return log_ratio_loss(v[0], target); };
  EXPECT_TRUE(grad_check(lr_fn, leaves, 1e-3, 5e-2).ok);
}

TEST(Autograd, LstmCellGradCheck) {
  Rng rng(4);
  LSTMCell cell(3, 4, rng);
  std::vector<Variable> leaves;
  for (auto* p : cell.parameters()) leaves.push_back(p->var);
  const Tensor x = random_tensor(2, 3, rng);
  auto fn = [&](std::vector<Variable>&) {
    auto st = cell.initial_state(2);
    st = cell.forward(Variable(x), st);
    st = cell.forward(Variable(x), st);  // weight reuse across steps
    return mean_all(st.h);
  };
  EXPECT_TRUE(grad_check(fn, leaves, 1e-2, 5e-2).ok);
}

TEST(Autograd, BackwardRequiresScalarRoot) {
  Variable v = Variable::leaf(Tensor::ones(2, 2));
  EXPECT_THROW(backward(v), std::invalid_argument);
}

TEST(Autograd, GradAccumulatesAcrossBackwardCalls) {
  Variable w = Variable::leaf(Tensor::scalar(3.0f));
  backward(scale(w, 2.0f));
  backward(scale(w, 2.0f));
  EXPECT_FLOAT_EQ(w.grad().item(), 4.0f);  // 2 + 2
  w.zero_grad();
  EXPECT_FALSE(w.has_grad());
}

TEST(Autograd, ConstantsReceiveNoGradient) {
  Variable c(Tensor::scalar(1.0f));  // constant
  Variable w = Variable::leaf(Tensor::scalar(2.0f));
  backward(mul(c, w));
  EXPECT_FALSE(c.has_grad());
  EXPECT_TRUE(w.has_grad());
}

TEST(Ops, AddBroadcastsBiasRow) {
  Variable x(Tensor::full(3, 2, 1.0f));
  Tensor bias_t(1, 2);
  bias_t.at(0, 0) = 10;
  bias_t.at(0, 1) = 20;
  Variable bias = Variable::leaf(bias_t);
  const Variable y = add(x, bias);
  EXPECT_FLOAT_EQ(y.value().at(2, 0), 11.0f);
  EXPECT_FLOAT_EQ(y.value().at(0, 1), 21.0f);
  backward(mean_all(y));
  // d mean / d bias_j = 3 rows * (1/6) each = 0.5
  EXPECT_NEAR(bias.grad().at(0, 0), 0.5f, 1e-6);
}

TEST(Ops, DropoutEvalIsIdentity) {
  Rng rng(1);
  Variable x = Variable::leaf(Tensor::full(4, 4, 2.0f));
  const Variable y = dropout(x, 0.5f, /*training=*/false, rng);
  for (std::size_t i = 0; i < y.value().size(); ++i)
    EXPECT_FLOAT_EQ(y.value().data()[i], 2.0f);
}

TEST(Ops, DropoutTrainKeepsExpectation) {
  Rng rng(5);
  Variable x(Tensor::full(100, 100, 1.0f));
  const Variable y = dropout(x, 0.3f, /*training=*/true, rng);
  double sum = 0;
  int zeros = 0;
  for (std::size_t i = 0; i < y.value().size(); ++i) {
    sum += y.value().data()[i];
    zeros += y.value().data()[i] == 0.0f;
  }
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.05);          // inverted scaling
  EXPECT_NEAR(zeros / 10000.0, 0.3, 0.03);        // drop rate
}

TEST(Ops, MapeLossValue) {
  Tensor target(2, 1);
  target.at(0, 0) = 2.0f;
  target.at(1, 0) = 4.0f;
  Tensor pred(2, 1);
  pred.at(0, 0) = 1.0f;   // APE 0.5
  pred.at(1, 0) = 5.0f;   // APE 0.25
  EXPECT_NEAR(mape_loss(Variable(pred), target).value().item(), 0.375f, 1e-6);
  Tensor zero_target(2, 1);
  EXPECT_THROW(mape_loss(Variable(pred), zero_target), std::invalid_argument);
}

TEST(Ops, LogRatioLossValue) {
  Tensor target = Tensor::full(1, 1, 2.0f);
  Tensor pred = Tensor::full(1, 1, 4.0f);
  EXPECT_NEAR(log_ratio_loss(Variable(pred), target).value().item(), std::log(2.0f), 1e-5);
}

// ---------------------------------------------------------------------------
// Modules
// ---------------------------------------------------------------------------

TEST(Modules, LinearShapesAndParamCount) {
  Rng rng(1);
  Linear l(5, 3, rng);
  EXPECT_EQ(l.parameter_count(), 5u * 3 + 3);
  const Variable y = l.forward(Variable(Tensor::ones(2, 5)));
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 3);
  EXPECT_THROW(l.forward(Variable(Tensor::ones(2, 4))), std::invalid_argument);
}

TEST(Modules, GlorotInitWithinLimit) {
  Rng rng(2);
  const Tensor w = glorot_uniform(10, 20, rng);
  const float limit = std::sqrt(6.0f / 30.0f);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::abs(w.data()[i]), limit);
  }
  // Not degenerate.
  double sq = 0;
  for (std::size_t i = 0; i < w.size(); ++i) sq += w.data()[i] * w.data()[i];
  EXPECT_GT(sq, 0.0);
}

TEST(Modules, MlpDepthAndShapes) {
  Rng rng(3);
  MLP mlp({7, 5, 3, 1}, 0.0f, rng, "m", false);
  EXPECT_EQ(mlp.in_features(), 7);
  EXPECT_EQ(mlp.out_features(), 1);
  Rng drng(1);
  const Variable y = mlp.forward(Variable(Tensor::ones(4, 7)), false, drng);
  EXPECT_EQ(y.rows(), 4);
  EXPECT_EQ(y.cols(), 1);
}

TEST(Modules, LstmStatefulForward) {
  Rng rng(4);
  LSTMCell cell(3, 5, rng);
  auto st = cell.initial_state(2);
  for (std::size_t i = 0; i < st.h.value().size(); ++i)
    EXPECT_FLOAT_EQ(st.h.value().data()[i], 0.0f);
  const Tensor x = random_tensor(2, 3, rng);
  auto st1 = cell.forward(Variable(x), st);
  auto st2 = cell.forward(Variable(x), st1);
  EXPECT_EQ(st2.h.rows(), 2);
  EXPECT_EQ(st2.h.cols(), 5);
  // State evolves.
  bool changed = false;
  for (std::size_t i = 0; i < st1.h.value().size(); ++i)
    changed = changed || st1.h.value().data()[i] != st2.h.value().data()[i];
  EXPECT_TRUE(changed);
}

// ---------------------------------------------------------------------------
// Optimizer & schedule
// ---------------------------------------------------------------------------

TEST(Optim, AdamWConvergesOnQuadratic) {
  // Minimize (w - 3)^2 with AdamW (no decay): w -> 3.
  Rng rng(1);
  Linear l(1, 1, rng);  // w*x + b with x=1: effectively w+b
  AdamWOptions opts;
  opts.lr = 0.05;
  opts.weight_decay = 0.0;
  AdamW opt(l.parameters(), opts);
  for (int i = 0; i < 400; ++i) {
    opt.zero_grad();
    const Variable y = l.forward(Variable(Tensor::ones(1, 1)));
    const Variable loss = mse_loss(y, Tensor::full(1, 1, 3.0f));
    backward(loss);
    opt.step();
  }
  const Variable y = l.forward(Variable(Tensor::ones(1, 1)));
  EXPECT_NEAR(y.value().item(), 3.0f, 0.05f);
}

TEST(Optim, WeightDecayShrinksWeightsVsNoDecay) {
  // Identical training runs except for the decay coefficient: the decayed
  // run must end with a smaller parameter norm.
  auto run = [](double decay) {
    Rng rng(1);
    Linear l(4, 4, rng);
    AdamWOptions opts;
    opts.lr = 0.01;
    opts.weight_decay = decay;
    AdamW opt(l.parameters(), opts);
    for (int i = 0; i < 50; ++i) {
      opt.zero_grad();
      const Variable y = l.forward(Variable(Tensor::ones(2, 4)));
      backward(mean_all(y));
      opt.step();
    }
    double norm = 0;
    for (auto* p : l.parameters())
      for (float v : p->var.value().span()) norm += v * v;
    return norm;
  };
  EXPECT_LT(run(0.5), run(0.0));
}

TEST(Optim, GradClippingBoundsUpdateDirection) {
  // A leaf with a huge gradient: with clipping the Adam moments stay sane
  // and a single step moves the weight by roughly lr.
  Parameter p{"w", Variable::leaf(Tensor::scalar(0.0f))};
  AdamWOptions opts;
  opts.lr = 0.1;
  opts.weight_decay = 0;
  opts.max_grad_norm = 1.0;
  AdamW opt({&p}, opts);
  backward(scale(p.var, 1e6f));
  opt.step();
  EXPECT_NEAR(p.var.value().item(), -0.1f, 0.02f);
}

TEST(Optim, OneCycleShape) {
  Parameter p{"w", Variable::leaf(Tensor::scalar(0.0f))};
  AdamW opt({&p}, {});
  OneCycleLR sched(&opt, /*max_lr=*/1.0, /*total_steps=*/100, /*pct_start=*/0.3);
  EXPECT_LT(opt.lr(), 0.1);  // starts low
  double peak = 0;
  double lr_at_30 = 0;
  for (int i = 0; i < 100; ++i) {
    sched.step();
    peak = std::max(peak, opt.lr());
    if (i == 29) lr_at_30 = opt.lr();
  }
  EXPECT_NEAR(peak, 1.0, 1e-6);
  EXPECT_NEAR(lr_at_30, 1.0, 0.01);   // peak at pct_start
  EXPECT_LT(opt.lr(), 1e-3);          // ends near zero
}

TEST(Optim, OneCycleRejectsBadArgs) {
  Parameter p{"w", Variable::leaf(Tensor::scalar(0.0f))};
  AdamW opt({&p}, {});
  EXPECT_THROW(OneCycleLR(nullptr, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(OneCycleLR(&opt, 1.0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(Serialize, RoundTripPreservesWeights) {
  Rng rng(7);
  MLP a({4, 8, 2}, 0.0f, rng, "m");
  const std::string path = testing::TempDir() + "/tcm_weights_test.bin";
  ASSERT_TRUE(save_parameters(a, path));
  Rng rng2(99);  // different init
  MLP b({4, 8, 2}, 0.0f, rng2, "m");
  ASSERT_TRUE(load_parameters(b, path));
  auto pa = a.parameters();
  auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    for (std::size_t k = 0; k < pa[i]->var.value().size(); ++k)
      EXPECT_FLOAT_EQ(pa[i]->var.value().data()[k], pb[i]->var.value().data()[k]);
}

TEST(Serialize, ShapeMismatchRejected) {
  Rng rng(7);
  MLP a({4, 8, 2}, 0.0f, rng, "m");
  const std::string path = testing::TempDir() + "/tcm_weights_mismatch.bin";
  ASSERT_TRUE(save_parameters(a, path));
  MLP b({4, 6, 2}, 0.0f, rng, "m");  // different hidden size
  EXPECT_THROW(load_parameters(b, path), std::runtime_error);
}

TEST(Serialize, FlippedByteFailsChecksum) {
  Rng rng(7);
  MLP a({4, 8, 2}, 0.0f, rng, "m");
  const std::string path = testing::TempDir() + "/tcm_weights_bitflip.bin";
  ASSERT_TRUE(save_parameters(a, path));
  // Flip one bit inside the last tensor's float payload (8 bytes from the
  // end: past every length/shape field, before the trailing CRC). The file
  // stays structurally valid — only the checksum can catch this.
  const auto size = std::filesystem::file_size(path);
  ASSERT_GT(size, 12u);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size - 8));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(static_cast<std::streamoff>(size - 8));
    f.write(&byte, 1);
  }
  Rng rng2(99);
  MLP b({4, 8, 2}, 0.0f, rng2, "m");
  try {
    load_parameters(b, path);
    FAIL() << "bit flip went undetected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
  }
}

TEST(Serialize, MissingFileReturnsFalse) {
  Rng rng(7);
  MLP a({2, 2}, 0.0f, rng, "m");
  EXPECT_FALSE(load_parameters(a, "/nonexistent/path/weights.bin"));
}

}  // namespace
}  // namespace tcm::nn
