#include <gtest/gtest.h>

#include <set>

#include "datagen/dataset_builder.h"
#include "datagen/generator.h"
#include "transforms/apply.h"

namespace tcm::datagen {
namespace {

// ---------------------------------------------------------------------------
// Program generator
// ---------------------------------------------------------------------------

class GeneratedPrograms : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedPrograms, AreValidAndWithinLimits) {
  const GeneratorOptions opt;
  RandomProgramGenerator gen(opt);
  const ir::Program p = gen.generate(static_cast<std::uint64_t>(GetParam()));
  EXPECT_EQ(p.validate(), std::nullopt) << p.to_string();
  EXPECT_GE(static_cast<int>(p.comps.size()), opt.min_comps);
  EXPECT_LE(static_cast<int>(p.comps.size()), opt.max_comps);
  for (const ir::Computation& c : p.comps) {
    EXPECT_LE(p.depth_of(c.id), opt.max_depth);
    EXPECT_GE(p.depth_of(c.id), 1);
    EXPECT_LE(p.iteration_count(c.id), opt.max_iterations);
    for (std::int64_t e : p.extents_of(c.id)) {
      EXPECT_GE(e, opt.min_extent);
      EXPECT_LE(e, opt.max_extent);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedPrograms, ::testing::Range(0, 40));

TEST(Generator, DeterministicInSeed) {
  RandomProgramGenerator gen;
  const ir::Program a = gen.generate(123);
  const ir::Program b = gen.generate(123);
  EXPECT_EQ(a.to_string(), b.to_string());
  const ir::Program c = gen.generate(124);
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(Generator, ProducesAllThreePatterns) {
  RandomProgramGenerator gen;
  bool saw_reduction = false, saw_stencil = false, saw_simple = false;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const ir::Program p = gen.generate(seed);
    for (const ir::Computation& c : p.comps) {
      if (c.is_reduction) {
        saw_reduction = true;
        continue;
      }
      // Stencil: some load has a constant offset or multiple loads of the
      // same buffer with different constants.
      bool stencil = false;
      for (const ir::BufferAccess& a : c.rhs.loads())
        for (int r = 0; r < a.matrix.rank(); ++r)
          if (a.matrix.constant(r) != 0) stencil = true;
      if (stencil) saw_stencil = true;
      else saw_simple = true;
    }
  }
  EXPECT_TRUE(saw_reduction);
  EXPECT_TRUE(saw_stencil);
  EXPECT_TRUE(saw_simple);
}

TEST(Generator, ProducesConsumerChains) {
  RandomProgramGenerator gen;
  bool saw_chain = false;
  for (std::uint64_t seed = 0; seed < 40 && !saw_chain; ++seed) {
    const ir::Program p = gen.generate(seed);
    for (const ir::Computation& c : p.comps)
      for (const ir::BufferAccess& a : c.rhs.loads())
        if (!p.buffer(a.buffer_id).is_input) saw_chain = true;
  }
  EXPECT_TRUE(saw_chain);
}

TEST(Generator, MinIterationFloorRespected) {
  GeneratorOptions opt;
  opt.min_iterations = 1 << 14;
  RandomProgramGenerator gen(opt);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const ir::Program p = gen.generate(seed);
    // Producer-locked comps may be smaller; check the first computation,
    // which never consumes a producer. A shallow nest can only reach
    // max_extent^depth.
    double reachable = 1;
    for (int l = 0; l < p.depth_of(0); ++l) reachable *= static_cast<double>(opt.max_extent);
    const double floor =
        std::min(static_cast<double>(opt.min_iterations), reachable);
    EXPECT_GE(static_cast<double>(p.iteration_count(0)), floor) << p.to_string();
  }
}

// ---------------------------------------------------------------------------
// Schedule generator
// ---------------------------------------------------------------------------

class GeneratedSchedules : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedSchedules, AreLegalByConstruction) {
  RandomProgramGenerator gen(GeneratorOptions::tiny());
  const ir::Program p = gen.generate(static_cast<std::uint64_t>(GetParam()));
  RandomScheduleGenerator sched_gen;
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  for (int i = 0; i < 8; ++i) {
    const transforms::Schedule s = sched_gen.generate(p, rng);
    std::string why;
    EXPECT_TRUE(transforms::is_legal(p, s, &why)) << s.to_string() << ": " << why;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedSchedules, ::testing::Range(0, 20));

TEST(ScheduleGenerator, ProducesDiverseTransformations) {
  RandomProgramGenerator gen;
  RandomScheduleGenerator sched_gen;
  Rng rng(5);
  int fusions = 0, skews = 0, unimodulars = 0, interchanges = 0, tiles = 0, unrolls = 0,
      parallels = 0, vectorizes = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const ir::Program p = gen.generate(seed);
    for (int i = 0; i < 4; ++i) {
      const transforms::Schedule s = sched_gen.generate(p, rng);
      fusions += static_cast<int>(s.fusions.size());
      skews += static_cast<int>(s.skews.size());
      unimodulars += static_cast<int>(s.unimodulars.size());
      interchanges += static_cast<int>(s.interchanges.size());
      tiles += static_cast<int>(s.tiles.size());
      unrolls += static_cast<int>(s.unrolls.size());
      parallels += static_cast<int>(s.parallels.size());
      vectorizes += static_cast<int>(s.vectorizes.size());
    }
  }
  EXPECT_GT(fusions, 0);
  EXPECT_GT(skews, 0);
  EXPECT_GT(unimodulars, 0);
  EXPECT_GT(interchanges, 0);
  EXPECT_GT(tiles, 0);
  EXPECT_GT(unrolls, 0);
  EXPECT_GT(parallels, 0);
  EXPECT_GT(vectorizes, 0);
}

TEST(Generator, ProducesMultiRootAndSharedRootPrograms) {
  GeneratorOptions opt;
  opt.min_comps = 2;
  opt.max_comps = 4;
  opt.p_consume_previous = 0.8;
  opt.p_share_root = 0.5;
  RandomProgramGenerator gen(opt);
  int multi_root = 0, shared_root = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const ir::Program p = gen.generate(seed);
    EXPECT_EQ(p.validate(), std::nullopt);
    if (p.roots.size() > 1) ++multi_root;
    // Shared root: fewer top-level nests than computations means at least
    // two computations natively share loops.
    if (p.roots.size() < p.comps.size()) ++shared_root;
  }
  EXPECT_GT(multi_root, 0);
  EXPECT_GT(shared_root, 0);
}

TEST(ScheduleGenerator, EmitsWavefrontPairsOnSkewedSchedules) {
  RandomProgramGenerator gen;
  ScheduleGeneratorOptions opt;
  opt.p_skew = 0.9;
  opt.p_wavefront = 0.9;
  RandomScheduleGenerator sched_gen(opt);
  Rng rng(11);
  int wavefronts = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const ir::Program p = gen.generate(seed);
    for (int i = 0; i < 4; ++i) {
      const transforms::Schedule s = sched_gen.generate(p, rng);
      EXPECT_TRUE(transforms::is_legal(p, s)) << s.to_string();
      for (const auto& sk : s.skews)
        for (const auto& ic : s.interchanges)
          if (ic.comp == sk.comp && ic.level_a == sk.level_a && ic.level_b == sk.level_a + 1)
            ++wavefronts;
    }
  }
  EXPECT_GT(wavefronts, 0);
}

// ---------------------------------------------------------------------------
// Dataset builder
// ---------------------------------------------------------------------------

TEST(DatasetBuilder, DeterministicInOptions) {
  DatasetBuildOptions opt;
  opt.num_programs = 4;
  opt.schedules_per_program = 4;
  const model::Dataset a = build_dataset(opt);
  const model::Dataset b = build_dataset(opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a.points[i].speedup, b.points[i].speedup);
}

TEST(DatasetBuilder, RoughlyExpectedSampleCount) {
  DatasetBuildOptions opt;
  opt.num_programs = 8;
  opt.schedules_per_program = 8;
  const model::Dataset ds = build_dataset(opt);
  EXPECT_GE(ds.size(), 0.9 * 8 * 8);  // a few candidates may fail featurization
  EXPECT_LE(ds.size(), 8u * 8u);
}

TEST(DatasetBuilder, SpeedupDistributionHasBothTails) {
  DatasetBuildOptions opt;
  opt.num_programs = 40;
  opt.schedules_per_program = 8;
  const model::Dataset ds = build_dataset(opt);
  int above = 0, below = 0;
  for (const auto& p : ds.points) {
    EXPECT_GT(p.speedup, 0.0);
    above += p.speedup > 1.5;
    below += p.speedup < 0.7;
  }
  // Both speedups and slowdowns occur (Figure 4's range).
  EXPECT_GT(above, 0);
  EXPECT_GT(below, 0);
}

TEST(DatasetBuilder, ProgramIdsAreContiguousGroups) {
  DatasetBuildOptions opt;
  opt.num_programs = 5;
  opt.schedules_per_program = 3;
  const model::Dataset ds = build_dataset(opt);
  std::set<int> ids;
  for (const auto& p : ds.points) {
    EXPECT_GE(p.program_id, 0);
    EXPECT_LT(p.program_id, 5);
    ids.insert(p.program_id);
  }
  EXPECT_EQ(ids.size(), 5u);
}

TEST(DatasetBuilder, BuildForSpecificProgram) {
  RandomProgramGenerator gen(GeneratorOptions::tiny());
  const ir::Program p = gen.generate(3);
  DatasetBuildOptions opt;
  const model::Dataset ds = build_for_program(p, 42, 6, opt, 9);
  EXPECT_GT(ds.size(), 0u);
  for (const auto& point : ds.points) EXPECT_EQ(point.program_id, 42);
}

TEST(DatasetBuilder, DedupeRemovesRepeatedSchedules) {
  RandomProgramGenerator gen(GeneratorOptions::tiny());
  const ir::Program p = gen.generate(1);
  DatasetBuildOptions opt;
  opt.dedupe_schedules = true;
  const model::Dataset deduped = build_for_program(p, 0, 64, opt, 9);
  opt.dedupe_schedules = false;
  const model::Dataset raw = build_for_program(p, 0, 64, opt, 9);
  EXPECT_LE(deduped.size(), raw.size());
}

}  // namespace
}  // namespace tcm::datagen
