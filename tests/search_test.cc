#include <gtest/gtest.h>

#include <algorithm>

#include "benchsuite/benchmarks.h"
#include "datagen/generator.h"
#include "search/beam_search.h"
#include "search/mcts.h"
#include "transforms/apply.h"

namespace tcm::search {
namespace {

ir::Program small_benchmark() { return benchsuite::make_heat2d(256, 256); }

// ---------------------------------------------------------------------------
// Decision space
// ---------------------------------------------------------------------------

TEST(Candidates, DecisionPointsCoverAllKinds) {
  const ir::Program p = benchsuite::make_conv_relu(2, 3, 64, 64, 2, 3);
  const auto points = decision_points(p, {});
  int fusion = 0, skew = 0, inter = 0, tile = 0, unroll = 0;
  for (const auto& d : points) {
    switch (d.kind) {
      case DecisionPoint::Kind::Fusion: ++fusion; break;
      case DecisionPoint::Kind::Skew: ++skew; break;
      case DecisionPoint::Kind::Interchange: ++inter; break;
      case DecisionPoint::Kind::Tile: ++tile; break;
      case DecisionPoint::Kind::Unroll: ++unroll; break;
    }
  }
  EXPECT_EQ(fusion, 1);  // one adjacent nest pair
  EXPECT_EQ(skew, 2);
  EXPECT_EQ(inter, 2);
  EXPECT_EQ(tile, 2);
  EXPECT_EQ(unroll, 2);
}

TEST(Candidates, SkewExpansionEnumeratesFactorsAndWavefronts) {
  const ir::Program p = small_benchmark();
  SearchSpaceOptions space;
  space.skew_factors = {1, 2};
  const auto points = decision_points(p, space);
  const auto it = std::find_if(points.begin(), points.end(), [](const DecisionPoint& d) {
    return d.kind == DecisionPoint::Kind::Skew;
  });
  ASSERT_NE(it, points.end());
  const auto alts = expand_decision(p, {}, *it, space);
  ASSERT_GT(alts.size(), 1u);
  int skew_only = 0, wavefront = 0;
  for (const auto& s : alts) {
    EXPECT_TRUE(transforms::is_legal(p, s)) << s.to_string();
    if (s.skews.empty()) continue;
    (s.interchanges.empty() ? skew_only : wavefront) += 1;
  }
  EXPECT_GT(skew_only, 0);
  EXPECT_GT(wavefront, 0);
}

TEST(Candidates, ExpansionAlwaysIncludesSkip) {
  const ir::Program p = small_benchmark();
  const auto points = decision_points(p, {});
  for (const auto& d : points) {
    const auto alts = expand_decision(p, {}, d, {});
    ASSERT_GE(alts.size(), 1u);
    EXPECT_TRUE(alts[0].empty());  // the unmodified prefix
  }
}

TEST(Candidates, AllExpansionsAreLegal) {
  const ir::Program p = benchsuite::make_conv_relu(2, 3, 64, 64, 2, 3);
  const auto points = decision_points(p, {});
  transforms::Schedule prefix;
  for (const auto& d : points) {
    const auto alts = expand_decision(p, prefix, d, {});
    for (const auto& s : alts) EXPECT_TRUE(transforms::is_legal(p, s)) << s.to_string();
    prefix = alts.back();  // walk a non-trivial path
  }
}

TEST(Candidates, TileAlternativesRespectExtents) {
  const ir::Program p = benchsuite::make_heat2d(40, 40);  // extents 38
  SearchSpaceOptions space;
  space.tile_sizes = {16, 32, 64};
  const auto points = decision_points(p, space);
  for (const auto& d : points) {
    if (d.kind != DecisionPoint::Kind::Tile) continue;
    for (const auto& s : expand_decision(p, {}, d, space))
      for (const auto& t : s.tiles)
        for (std::int64_t size : t.sizes) EXPECT_LE(size, 38);
  }
}

TEST(Candidates, InterchangePairCap) {
  const ir::Program p = benchsuite::make_convolution(2, 3, 64, 64, 2, 3);  // depth 7
  SearchSpaceOptions space;
  space.max_interchange_pairs = 3;
  for (const auto& d : decision_points(p, space)) {
    if (d.kind != DecisionPoint::Kind::Interchange) continue;
    EXPECT_LE(expand_decision(p, {}, d, space).size(), 4u);  // skip + 3
  }
}

TEST(Heuristics, ParallelizeOutermostAndVectorizeInnermost) {
  const ir::Program p = small_benchmark();
  const transforms::Schedule s = apply_parallel_vector_heuristics(p, {}, {});
  ASSERT_EQ(s.parallels.size(), 1u);
  EXPECT_EQ(s.parallels[0].level, 0);
  ASSERT_EQ(s.vectorizes.size(), 1u);
  EXPECT_TRUE(transforms::is_legal(p, s));
}

TEST(Heuristics, SkipsReductionOuterLoopCorrectly) {
  // mvt: both computations are reductions over j; level 0 (i) is legal.
  const ir::Program p = benchsuite::make_mvt(128);
  const transforms::Schedule s = apply_parallel_vector_heuristics(p, {}, {});
  EXPECT_EQ(s.parallels.size(), 2u);
  EXPECT_TRUE(transforms::is_legal(p, s));
}

// ---------------------------------------------------------------------------
// Beam search
// ---------------------------------------------------------------------------

TEST(BeamSearch, FindsScheduleAtLeastAsGoodAsHeuristicsOnly) {
  const ir::Program p = small_benchmark();
  ExecutionEvaluator eval{sim::Executor()};
  const auto result = beam_search(p, eval, {});
  EXPECT_TRUE(transforms::is_legal(p, result.best_schedule));
  ExecutionEvaluator check{sim::Executor()};
  const transforms::Schedule heur = apply_parallel_vector_heuristics(p, {}, {});
  const double heur_speedup = check.evaluate(p, {heur})[0];
  EXPECT_GE(result.best_score, 0.95 * heur_speedup);
}

TEST(BeamSearch, AccountingIsPopulated) {
  const ir::Program p = small_benchmark();
  ExecutionEvaluator eval{sim::Executor()};
  const auto result = beam_search(p, eval, {});
  EXPECT_GT(result.evaluations, 0);
  EXPECT_GT(result.accounted_seconds, 0.0);
  EXPECT_GE(result.wall_seconds, 0.0);
  EXPECT_EQ(eval.evaluations(), result.evaluations);
}

TEST(BeamSearch, WiderBeamNeverLosesWithExactEvaluator) {
  const ir::Program p = benchsuite::make_mvt(256);
  sim::ExecutorOptions exact;
  exact.noise_sigma = 0.0;
  BeamSearchOptions narrow, wide;
  narrow.beam_width = 1;
  wide.beam_width = 6;
  ExecutionEvaluator e1{sim::Executor(sim::MachineModel(), exact)};
  ExecutionEvaluator e2{sim::Executor(sim::MachineModel(), exact)};
  const auto r1 = beam_search(p, e1, narrow);
  const auto r2 = beam_search(p, e2, wide);
  EXPECT_GE(r2.best_score, 0.999 * r1.best_score);
}

TEST(BeamSearch, DeterministicWithNoiseFreeEvaluator) {
  const ir::Program p = small_benchmark();
  sim::ExecutorOptions exact;
  exact.noise_sigma = 0.0;
  ExecutionEvaluator e1{sim::Executor(sim::MachineModel(), exact)};
  ExecutionEvaluator e2{sim::Executor(sim::MachineModel(), exact)};
  const auto r1 = beam_search(p, e1, {});
  const auto r2 = beam_search(p, e2, {});
  EXPECT_EQ(r1.best_schedule.to_string(), r2.best_schedule.to_string());
  EXPECT_DOUBLE_EQ(r1.best_score, r2.best_score);
}

// ---------------------------------------------------------------------------
// MCTS
// ---------------------------------------------------------------------------

TEST(Mcts, ReturnsLegalScheduleWithMeasuredSpeedup) {
  const ir::Program p = small_benchmark();
  ExecutionEvaluator model_stub{sim::Executor()};  // exact "model" for the test
  ExecutionEvaluator exec{sim::Executor()};
  MctsOptions opt;
  opt.iterations = 40;
  const auto result = mcts_search(p, model_stub, exec, opt);
  EXPECT_TRUE(transforms::is_legal(p, result.best_schedule));
  EXPECT_GT(result.best_measured_speedup, 0.0);
  EXPECT_GT(result.model_evaluations, 0);
  EXPECT_GT(result.accounted_seconds, 0.0);
}

TEST(Mcts, ExecutesAtMostTopKCandidates) {
  const ir::Program p = small_benchmark();
  ExecutionEvaluator model_stub{sim::Executor()};
  ExecutionEvaluator exec{sim::Executor()};
  MctsOptions opt;
  opt.iterations = 30;
  opt.top_k = 3;
  mcts_search(p, model_stub, exec, opt);
  EXPECT_LE(exec.evaluations(), 3);
}

TEST(Mcts, DeterministicInSeed) {
  const ir::Program p = small_benchmark();
  sim::ExecutorOptions exact;
  exact.noise_sigma = 0.0;
  MctsOptions opt;
  opt.iterations = 25;
  ExecutionEvaluator m1{sim::Executor(sim::MachineModel(), exact)};
  ExecutionEvaluator x1{sim::Executor(sim::MachineModel(), exact)};
  const auto r1 = mcts_search(p, m1, x1, opt);
  ExecutionEvaluator m2{sim::Executor(sim::MachineModel(), exact)};
  ExecutionEvaluator x2{sim::Executor(sim::MachineModel(), exact)};
  const auto r2 = mcts_search(p, m2, x2, opt);
  EXPECT_EQ(r1.best_schedule.to_string(), r2.best_schedule.to_string());
}

TEST(Mcts, MoreIterationsDoNotHurtWithExactModel) {
  const ir::Program p = benchsuite::make_mvt(256);
  sim::ExecutorOptions exact;
  exact.noise_sigma = 0.0;
  MctsOptions few, many;
  few.iterations = 10;
  many.iterations = 120;
  ExecutionEvaluator m1{sim::Executor(sim::MachineModel(), exact)};
  ExecutionEvaluator x1{sim::Executor(sim::MachineModel(), exact)};
  ExecutionEvaluator m2{sim::Executor(sim::MachineModel(), exact)};
  ExecutionEvaluator x2{sim::Executor(sim::MachineModel(), exact)};
  const auto r_few = mcts_search(p, m1, x1, few);
  const auto r_many = mcts_search(p, m2, x2, many);
  EXPECT_GE(r_many.best_measured_speedup, 0.9 * r_few.best_measured_speedup);
}

// ---------------------------------------------------------------------------
// Evaluators
// ---------------------------------------------------------------------------

TEST(Evaluators, ExecutionEvaluatorMatchesExecutor) {
  const ir::Program p = small_benchmark();
  sim::ExecutorOptions exact;
  exact.noise_sigma = 0.0;
  ExecutionEvaluator eval{sim::Executor(sim::MachineModel(), exact)};
  transforms::Schedule s;
  s.parallels.push_back({0, 0});
  const auto speedups = eval.evaluate(p, {s});
  sim::Executor direct{sim::MachineModel(), exact};
  EXPECT_NEAR(speedups[0], direct.measure_speedup(p, s), 1e-9);
  EXPECT_EQ(eval.evaluations(), 1);
  EXPECT_GT(eval.accounted_seconds(), 0.0);
  EXPECT_STREQ(eval.kind(), "execution");
}

TEST(Evaluators, ModelEvaluatorBatchesMixedStructures) {
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  // A two-nest program: fusion changes structure, so candidates mix trees.
  ir::Program p;
  bool found = false;
  for (std::uint64_t seed = 0; seed < 30 && !found; ++seed) {
    p = gen.generate(seed);
    found = p.roots.size() >= 2;
  }
  ASSERT_TRUE(found);
  Rng rng(1);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  ModelEvaluator eval(&cost_model, model::FeatureConfig::fast());
  datagen::RandomScheduleGenerator sgen;
  Rng srng(2);
  std::vector<transforms::Schedule> candidates;
  for (int i = 0; i < 6; ++i) candidates.push_back(sgen.generate(p, srng));
  const auto speedups = eval.evaluate(p, candidates);
  EXPECT_EQ(speedups.size(), candidates.size());
  for (double s : speedups) EXPECT_GT(s, 0.0);
  EXPECT_EQ(eval.evaluations(), 6);
}

}  // namespace
}  // namespace tcm::search
