// Tests for the tape-free fused inference engine (src/nn/inference.h):
// arena reuse and the zero-allocation steady state, fused-kernel
// correctness, autograd-vs-inference numerical parity for all three
// architectures over randomized program structures, plan invalidation after
// parameter mutation, and concurrent infer_batch on one model.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "datagen/dataset_builder.h"
#include "model/cost_model.h"
#include "model/train.h"
#include "nn/inference.h"
#include "nn/ops.h"

namespace tcm::nn {
namespace {

Tensor random_tensor(int rows, int cols, Rng& rng) {
  Tensor t(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i)
    t.data()[i] = static_cast<float>(rng.uniform_real(-1.5, 1.5));
  return t;
}

// ---------------------------------------------------------------------------
// InferenceArena
// ---------------------------------------------------------------------------

TEST(InferenceArena, ReusesBuffersAfterReset) {
  InferenceArena arena;
  Tensor& a = arena.alloc(4, 8);
  Tensor& b = arena.alloc(2, 2);
  EXPECT_EQ(arena.buffers(), 2u);
  EXPECT_EQ(arena.heap_allocations(), 2u);
  float* pa = a.data();
  arena.reset();
  Tensor& a2 = arena.alloc(4, 8);
  Tensor& b2 = arena.alloc(2, 2);
  EXPECT_EQ(&a, &a2);            // same slot, in order
  EXPECT_EQ(&b, &b2);
  EXPECT_EQ(a2.data(), pa);      // same storage: no reallocation
  EXPECT_EQ(arena.heap_allocations(), 2u);
}

TEST(InferenceArena, ShrinkingReshapeDoesNotAllocate) {
  InferenceArena arena;
  arena.alloc(8, 8);
  const std::uint64_t after_first = arena.heap_allocations();
  arena.reset();
  Tensor& t = arena.alloc(2, 3);  // smaller: fits in the existing capacity
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(arena.heap_allocations(), after_first);
  arena.reset();
  arena.alloc(32, 32);  // growth is counted
  EXPECT_GT(arena.heap_allocations(), after_first);
}

TEST(InferenceArena, LaterAllocsDoNotInvalidateEarlierBuffers) {
  InferenceArena arena;
  Tensor& first = arena.alloc(2, 2);
  first.fill(7.0f);
  for (int i = 0; i < 100; ++i) arena.alloc(16, 16);
  EXPECT_EQ(first.at(1, 1), 7.0f);  // deque pool: no relocation
}

// ---------------------------------------------------------------------------
// Fused kernels vs the autograd ops
// ---------------------------------------------------------------------------

TEST(FusedKernels, LinearForwardMatchesOps) {
  Rng rng(1);
  const Tensor x = random_tensor(5, 7, rng);
  const Tensor w = random_tensor(7, 3, rng);
  const Tensor b = random_tensor(1, 3, rng);
  InferenceArena arena;
  Tensor& out = arena.alloc(5, 3);
  linear_forward(x, w, b, out);
  const Variable ref = add(matmul(Variable(x), Variable(w)), Variable(b));
  for (int r = 0; r < 5; ++r)
    for (int c = 0; c < 3; ++c) EXPECT_NEAR(out.at(r, c), ref.value().at(r, c), 1e-6f);
}

TEST(FusedKernels, LinearEluMatchesOps) {
  Rng rng(2);
  const Tensor x = random_tensor(4, 6, rng);
  const Tensor w = random_tensor(6, 5, rng);
  const Tensor b = random_tensor(1, 5, rng);
  InferenceArena arena;
  Tensor& out = arena.alloc(4, 5);
  linear_elu(x, w, b, out);
  const Variable ref = elu(add(matmul(Variable(x), Variable(w)), Variable(b)));
  // The fused ELU uses the polynomial exp: compare within the engine's
  // documented tolerance, not bitwise.
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 5; ++c) EXPECT_NEAR(out.at(r, c), ref.value().at(r, c), 1e-5f);
}

TEST(FusedKernels, ExpBoundedInplaceMatchesOps) {
  Rng rng(3);
  Tensor x = random_tensor(3, 4, rng);
  const Variable ref = exp_bounded(Variable(x), 16.0f);
  exp_bounded_inplace(x, 16.0f);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 4; ++c)
      EXPECT_NEAR(x.at(r, c) / ref.value().at(r, c), 1.0f, 1e-5f);
}

TEST(FusedKernels, PackedLstmStepMatchesCell) {
  Rng rng(4);
  LSTMCell cell(6, 5, rng);
  const PackedLSTMCell packed = PackedLSTMCell::pack(cell);
  EXPECT_EQ(packed.w.rows(), 6 + 5);
  EXPECT_EQ(packed.w.cols(), 4 * 5);

  const int batch = 3;
  const Tensor x1 = random_tensor(batch, 6, rng);
  const Tensor x2 = random_tensor(batch, 6, rng);

  // Reference: two autograd steps.
  LSTMCell::State state = cell.initial_state(batch);
  state = cell.forward(Variable(x1), state);
  state = cell.forward(Variable(x2), state);

  // Fused: two in-place steps.
  InferenceArena arena;
  Tensor& h = arena.alloc(batch, 5);
  Tensor& c = arena.alloc(batch, 5);
  h.fill(0.0f);
  c.fill(0.0f);
  packed.step(x1, h, c, arena);
  packed.step(x2, h, c, arena);

  for (int r = 0; r < batch; ++r)
    for (int j = 0; j < 5; ++j) {
      EXPECT_NEAR(h.at(r, j), state.h.value().at(r, j), 1e-5f);
      EXPECT_NEAR(c.at(r, j), state.c.value().at(r, j), 1e-5f);
    }
}

}  // namespace
}  // namespace tcm::nn

namespace tcm::model {
namespace {

Dataset structured_dataset(int programs, int schedules, std::uint64_t seed = 7) {
  datagen::DatasetBuildOptions opt;
  opt.num_programs = programs;
  opt.schedules_per_program = schedules;
  opt.features = FeatureConfig::fast();
  opt.seed = seed;
  return datagen::build_dataset(opt);
}

// Maximum relative error between fused inference and the autograd forward
// over every batch of the dataset the predictor accepts. `skipped` counts
// batches the architecture rejects (FeedForwardModel capacity).
double max_parity_rel_err(SpeedupPredictor& m, const std::vector<Batch>& batches,
                          int* skipped = nullptr) {
  nn::InferenceArena arena;
  Rng rng(0);
  double worst = 0;
  for (const Batch& b : batches) {
    nn::Variable ref;
    try {
      ref = m.forward_batch(b, /*training=*/false, rng);
    } catch (const std::invalid_argument&) {
      if (skipped) ++*skipped;
      continue;
    }
    const nn::Tensor& fast = m.infer_batch(b, arena);
    EXPECT_EQ(fast.rows(), b.batch_size());
    EXPECT_EQ(fast.cols(), 1);
    for (int r = 0; r < fast.rows(); ++r) {
      const double a = static_cast<double>(fast.at(r, 0));
      const double e = static_cast<double>(ref.value().at(r, 0));
      worst = std::max(worst, std::abs(a - e) / std::max(std::abs(e), 1e-12));
    }
  }
  return worst;
}

// The acceptance bar: inference-vs-autograd parity within 1e-5 relative
// error for all three architectures over randomized program structures.
TEST(InferenceParity, AllArchitecturesWithinRelTolerance) {
  const Dataset ds = structured_dataset(6, 6);
  const auto batches = make_batches(ds, 8);
  ASSERT_GT(batches.size(), 1u);

  Rng r1(1), r2(2), r3(3);
  CostModel cost(ModelConfig::fast(), r1);
  LstmOnlyModel lstm(ModelConfig::fast(), r2);
  FeedForwardModel ff(ModelConfig::fast(), r3);

  EXPECT_LE(max_parity_rel_err(cost, batches), 1e-5);
  EXPECT_LE(max_parity_rel_err(lstm, batches), 1e-5);
  int ff_skipped = 0;
  EXPECT_LE(max_parity_rel_err(ff, batches, &ff_skipped), 1e-5);
  // The ff model must have actually scored something.
  EXPECT_LT(static_cast<std::size_t>(ff_skipped), batches.size());
}

TEST(InferenceParity, FeedForwardRejectsOversizedBatchOnFastPath) {
  const Dataset ds = structured_dataset(6, 4);
  ModelConfig cfg = ModelConfig::fast();
  cfg.ff_max_comps = 1;
  Rng rng(1);
  FeedForwardModel ff(cfg, rng);
  nn::InferenceArena arena;
  bool found_multi = false;
  for (const Batch& b : make_batches(ds, 4)) {
    if (b.num_comps() > 1) {
      found_multi = true;
      EXPECT_THROW(ff.infer_batch(b, arena), std::invalid_argument);
    }
  }
  EXPECT_TRUE(found_multi);
}

// The acceptance bar: steady-state infer_batch performs zero heap
// allocations, asserted via the arena allocation counter — including when
// differently-shaped structures alternate through one arena.
TEST(InferenceArenaSteadyState, ZeroAllocationsOnceWarm) {
  const Dataset ds = structured_dataset(5, 6);
  const auto batches = make_batches(ds, 8);
  Rng rng(1);
  CostModel m(ModelConfig::fast(), rng);
  nn::InferenceArena arena;
  // Warm-up pass: buffers are created and sized.
  for (const Batch& b : batches) m.infer_batch(b, arena);
  const std::uint64_t warm = arena.heap_allocations();
  EXPECT_GT(warm, 0u);
  for (int rep = 0; rep < 10; ++rep)
    for (const Batch& b : batches) m.infer_batch(b, arena);
  EXPECT_EQ(arena.heap_allocations(), warm);
}

TEST(InferencePlan, StaleAfterParameterMutationUntilInvalidated) {
  const Dataset ds = structured_dataset(2, 4);
  const auto batches = make_batches(ds, 8);
  Rng rng(1);
  CostModel m(ModelConfig::fast(), rng);
  nn::InferenceArena arena;
  const float before = m.infer_batch(batches[0], arena).at(0, 0);

  // Mutate the parameters the way training would (in place).
  for (nn::Parameter* p : m.parameters()) p->var.mutable_value().scale_(1.05f);

  // The packed LSTM weights were copied at pack time, so without
  // invalidation the fast path is (by design) allowed to be stale; after
  // invalidate_inference it must track the autograd forward again.
  m.invalidate_inference();
  Rng r0(0);
  const float ref = m.forward_batch(batches[0], /*training=*/false, r0).value().at(0, 0);
  const float after = m.infer_batch(batches[0], arena).at(0, 0);
  EXPECT_NE(before, after);
  EXPECT_NEAR(after / ref, 1.0f, 1e-5f);
}

// predict() rides the fast path and must agree with a hand-rolled autograd
// evaluation loop (this is what per-epoch validation during training uses).
TEST(InferencePredict, MatchesAutogradEvaluation) {
  const Dataset ds = structured_dataset(3, 5);
  Rng rng(9);
  CostModel m(ModelConfig::fast(), rng);
  const std::vector<double> fast = predict(m, ds, 16);
  ASSERT_EQ(fast.size(), ds.size());
  Rng r0(0);
  for (const Batch& b : make_batches(ds, 16)) {
    const nn::Variable ref = m.forward_batch(b, /*training=*/false, r0);
    for (int r = 0; r < ref.rows(); ++r) {
      const double e = static_cast<double>(ref.value().at(r, 0));
      EXPECT_NEAR(fast[b.point_indices[static_cast<std::size_t>(r)]] / e, 1.0, 1e-5);
    }
  }
}

// Concurrent infer_batch on one model instance: per-thread arenas, a shared
// lazily-built plan (first calls race on purpose), bitwise-identical results
// across threads and repetitions.
TEST(InferenceConcurrency, ConcurrentInferBatchIsDeterministic) {
  const Dataset ds = structured_dataset(4, 6);
  const auto batches = make_batches(ds, 8);
  Rng rng(1);
  CostModel m(ModelConfig::fast(), rng);

  // Single-thread reference through a private arena (fresh model state: the
  // plan gets built lazily by whichever caller is first).
  std::vector<std::vector<float>> expected;
  {
    nn::InferenceArena arena;
    for (const Batch& b : batches) {
      const nn::Tensor& p = m.infer_batch(b, arena);
      std::vector<float> row(p.data(), p.data() + p.size());
      expected.push_back(std::move(row));
    }
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      nn::InferenceArena arena;
      for (int rep = 0; rep < 5; ++rep)
        for (std::size_t bi = 0; bi < batches.size(); ++bi) {
          const nn::Tensor& p = m.infer_batch(batches[bi], arena);
          for (std::size_t i = 0; i < p.size(); ++i)
            if (p.data()[i] != expected[bi][i]) ++mismatches;
        }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace tcm::model
