// Overload-resilience and chaos tests: retries, circuit breaker, admission
// control + degradation ladder, deadline propagation shed points, and the
// failpoint-driven fault-injection scenarios (the latter skip themselves on
// builds without -DTCM_FAILPOINTS=ON).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "datagen/generator.h"
#include "model/cost_model.h"
#include "nn/inference.h"
#include "obs/metrics.h"
#include "registry/model_registry.h"
#include "serve/admission.h"
#include "serve/errors.h"
#include "serve/prediction_service.h"
#include "support/circuit_breaker.h"
#include "support/failpoint.h"
#include "support/retry.h"

namespace fs = std::filesystem;

namespace tcm {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// support::with_retries
// ---------------------------------------------------------------------------

TEST(Retry, BackoffScheduleIsExponentialAndCapped) {
  support::RetryOptions options;
  options.initial_backoff = milliseconds(10);
  options.multiplier = 2.0;
  options.max_backoff = milliseconds(50);
  EXPECT_EQ(support::retry_backoff(options, 0), milliseconds(10));
  EXPECT_EQ(support::retry_backoff(options, 1), milliseconds(20));
  EXPECT_EQ(support::retry_backoff(options, 2), milliseconds(40));
  EXPECT_EQ(support::retry_backoff(options, 3), milliseconds(50));  // capped
  EXPECT_EQ(support::retry_backoff(options, 9), milliseconds(50));
}

TEST(Retry, TransientFailuresAreAbsorbed) {
  support::RetryOptions options;
  options.max_attempts = 3;
  options.jitter = 0.0;
  std::vector<milliseconds> slept;
  options.sleep_fn = [&](milliseconds d) { slept.push_back(d); };
  std::vector<int> retried;
  options.on_retry = [&](int attempt, const std::string&) { retried.push_back(attempt); };

  int calls = 0;
  const int result = support::with_retries(options, [&] {
    if (++calls < 3) throw std::runtime_error("transient");
    return 42;
  });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(slept.size(), 2u);  // a sleep between attempts, none after success
  EXPECT_EQ(slept[0], milliseconds(10));
  EXPECT_EQ(slept[1], milliseconds(20));
  EXPECT_EQ(retried, (std::vector<int>{1, 2}));
}

TEST(Retry, TerminalFailureRethrowsTheLastExceptionUnchanged) {
  support::RetryOptions options;
  options.max_attempts = 3;
  options.sleep_fn = [](milliseconds) {};
  int calls = 0;
  try {
    support::with_retries(options, [&]() -> int {
      ++calls;
      throw std::runtime_error("attempt " + std::to_string(calls));
    });
    FAIL() << "with_retries must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "attempt 3");  // the *last* failure, type intact
  }
  EXPECT_EQ(calls, 3);
}

TEST(Retry, JitterStaysWithinTheConfiguredBand) {
  support::RetryOptions options;
  options.max_attempts = 32;
  options.initial_backoff = milliseconds(100);
  options.multiplier = 1.0;  // constant pre-jitter backoff: isolates the jitter
  options.jitter = 0.2;
  std::vector<milliseconds> slept;
  options.sleep_fn = [&](milliseconds d) { slept.push_back(d); };
  EXPECT_THROW(support::with_retries(options, []() -> int {
    throw std::runtime_error("always");
  }),
               std::runtime_error);
  ASSERT_EQ(slept.size(), 31u);
  bool varied = false;
  for (milliseconds d : slept) {
    EXPECT_GE(d.count(), 80);
    EXPECT_LE(d.count(), 120);
    if (d != slept.front()) varied = true;
  }
  EXPECT_TRUE(varied);  // jitter actually jitters
}

TEST(Retry, MaxAttemptsOneMeansNoRetry) {
  support::RetryOptions options;
  options.max_attempts = 1;
  bool slept_any = false;
  options.sleep_fn = [&](milliseconds) { slept_any = true; };
  int calls = 0;
  EXPECT_THROW(support::with_retries(options, [&]() -> int {
    ++calls;
    throw std::runtime_error("x");
  }),
               std::runtime_error);
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(slept_any);
}

// ---------------------------------------------------------------------------
// support::CircuitBreaker
// ---------------------------------------------------------------------------

struct FakeClock {
  steady_clock::time_point now = steady_clock::time_point{};
  void advance(milliseconds d) { now += d; }
};

support::CircuitBreaker::Options breaker_options(FakeClock& clock, int threshold = 3,
                                                 milliseconds cooldown = milliseconds(1000)) {
  support::CircuitBreaker::Options options;
  options.failure_threshold = threshold;
  options.open_cooldown = cooldown;
  options.now_fn = [&clock] { return clock.now; };
  return options;
}

TEST(CircuitBreaker, OpensAfterConsecutiveFailuresOnly) {
  FakeClock clock;
  support::CircuitBreaker breaker(breaker_options(clock));
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(breaker.allow());
    breaker.record_failure();
  }
  breaker.record_success();  // resets the streak
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  for (int i = 0; i < 2; ++i) breaker.record_failure();
  EXPECT_EQ(breaker.state(), support::CircuitBreaker::State::kClosed);
  breaker.record_failure();  // third consecutive: trips
  EXPECT_EQ(breaker.state(), support::CircuitBreaker::State::kOpen);
  EXPECT_STREQ(breaker.state_name(), "open");
  EXPECT_EQ(breaker.times_opened(), 1u);
  EXPECT_FALSE(breaker.allow());
}

TEST(CircuitBreaker, HalfOpenAdmitsExactlyOneProbe) {
  FakeClock clock;
  support::CircuitBreaker breaker(breaker_options(clock));
  for (int i = 0; i < 3; ++i) breaker.record_failure();
  ASSERT_EQ(breaker.state(), support::CircuitBreaker::State::kOpen);

  clock.advance(milliseconds(999));
  EXPECT_FALSE(breaker.allow());  // cooldown not yet elapsed
  clock.advance(milliseconds(1));
  EXPECT_TRUE(breaker.allow());  // the probe
  EXPECT_EQ(breaker.state(), support::CircuitBreaker::State::kHalfOpen);
  EXPECT_STREQ(breaker.state_name(), "half_open");
  EXPECT_FALSE(breaker.allow());  // only one probe until it reports back

  breaker.record_success();
  EXPECT_EQ(breaker.state(), support::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(CircuitBreaker, FailedProbeReopensAndRestartsTheCooldown) {
  FakeClock clock;
  support::CircuitBreaker breaker(breaker_options(clock));
  for (int i = 0; i < 3; ++i) breaker.record_failure();
  clock.advance(milliseconds(1000));
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();  // probe fails
  EXPECT_EQ(breaker.state(), support::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  clock.advance(milliseconds(500));
  EXPECT_FALSE(breaker.allow());  // cooldown restarted at the probe failure
  clock.advance(milliseconds(500));
  EXPECT_TRUE(breaker.allow());
}

// ---------------------------------------------------------------------------
// serve::AdmissionController
// ---------------------------------------------------------------------------

TEST(AdmissionController, DisabledWhenQueueCapIsZero) {
  obs::MetricsRegistry registry;
  serve::AdmissionController admission({}, registry);
  EXPECT_FALSE(admission.enabled());
  EXPECT_TRUE(admission.admit(1'000'000, std::chrono::hours(1)).admit);
  EXPECT_EQ(admission.update(1'000'000), 0);
  EXPECT_EQ(admission.total_shed(), 0u);
}

TEST(AdmissionController, HardCapShedsRegardlessOfLadder) {
  obs::MetricsRegistry registry;
  serve::AdmissionOptions options;
  options.queue_cap = 8;
  serve::AdmissionController admission(options, registry);
  EXPECT_TRUE(admission.admit(0, {}).admit);
  const auto decision = admission.admit(8, {});
  EXPECT_FALSE(decision.admit);
  EXPECT_EQ(decision.reason, serve::ShedReason::kQueueFull);
  EXPECT_EQ(admission.total_shed(), 1u);
}

TEST(AdmissionController, StaleHeadOfQueueSheds) {
  obs::MetricsRegistry registry;
  serve::AdmissionOptions options;
  options.queue_cap = 100;
  options.max_queue_age = milliseconds(10);
  serve::AdmissionController admission(options, registry);
  EXPECT_TRUE(admission.admit(1, milliseconds(9)).admit);
  const auto decision = admission.admit(1, milliseconds(11));
  EXPECT_FALSE(decision.admit);
  EXPECT_EQ(decision.reason, serve::ShedReason::kQueueAge);
}

TEST(AdmissionController, LadderWalksUpAndDownWithHysteresis) {
  obs::MetricsRegistry registry;
  serve::AdmissionOptions options;
  options.queue_cap = 100;  // default watermarks: .50/.30, .75/.50, .95/.70
  serve::AdmissionController admission(options, registry);

  EXPECT_EQ(admission.update(0), 0);
  EXPECT_EQ(admission.update(50), 1);   // >= shadow_off_enter
  EXPECT_EQ(admission.update(40), 1);   // above shadow_off_exit: holds (hysteresis)
  EXPECT_EQ(admission.update(29), 0);   // below exit: back down
  EXPECT_EQ(admission.update(75), 2);   // straight to latency shrink
  EXPECT_EQ(admission.update(95), 3);
  EXPECT_EQ(admission.update(71), 3);   // above shed_exit: still shedding
  EXPECT_EQ(admission.update(69), 2);
  EXPECT_EQ(admission.update(49), 1);
  EXPECT_EQ(admission.update(10), 0);
  // One update may cross several watermarks at once.
  EXPECT_EQ(admission.update(100), 3);
  EXPECT_EQ(admission.update(0), 0);

  // Shedding is hysteretic too: depth 75 admits while pressure is rising
  // (level 2), but sheds while coming down from saturation — level 3 holds
  // until the fill drops below shed_exit.
  EXPECT_TRUE(admission.admit(75, {}).admit);
  admission.update(96);
  EXPECT_FALSE(admission.admit(75, {}).admit);
}

TEST(AdmissionController, ShedCountersLandInTheSharedMetricsFamily) {
  obs::MetricsRegistry registry;
  serve::register_admission_metrics(registry);  // zero-valued from first scrape
  serve::AdmissionOptions options;
  options.queue_cap = 4;
  serve::AdmissionController admission(options, registry);
  admission.count_shed(serve::ShedReason::kDeadlineSubmit);
  admission.count_shed(serve::ShedReason::kDeadlineBatch);
  admission.count_shed(serve::ShedReason::kDeadlineInfer);
  (void)admission.admit(4, {});
  EXPECT_EQ(admission.total_shed(), 4u);
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("tcm_shed_total{reason=\"deadline_submit\"} 1"), std::string::npos);
  EXPECT_NE(text.find("tcm_shed_total{reason=\"queue_full\"} 1"), std::string::npos);
  EXPECT_NE(text.find("tcm_shed_total{reason=\"queue_age\"} 0"), std::string::npos);
  EXPECT_NE(text.find("tcm_degradation_level"), std::string::npos);
}

// ---------------------------------------------------------------------------
// PredictionService: deadline shed points and admission integration
// ---------------------------------------------------------------------------

ir::Program test_program(std::uint64_t seed = 0) {
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  return gen.generate(seed);
}

std::shared_ptr<const model::FeaturizedProgram> featurize_or_die(
    const ir::Program& p, const transforms::Schedule& s) {
  std::string error;
  auto feats = model::featurize(p, s, model::FeatureConfig::fast(), &error);
  if (!feats) throw std::runtime_error("test featurization failed: " + error);
  return std::make_shared<const model::FeaturizedProgram>(std::move(*feats));
}

serve::ServeOptions fast_options(int threads) {
  serve::ServeOptions options;
  options.num_threads = threads;
  options.features = model::FeatureConfig::fast();
  options.max_queue_latency = std::chrono::microseconds(500);
  return options;
}

double direct_prediction(model::SpeedupPredictor& m, const model::FeaturizedProgram& feats) {
  const model::Batch single = model::make_inference_batch({&feats});
  nn::InferenceArena arena;
  return static_cast<double>(m.infer_batch(single, arena).at(0, 0));
}

TEST(PredictionServiceResilience, ExpiredDeadlineShedsBeforeFeaturization) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::PredictionService service(cost_model, fast_options(1));

  auto future = service.submit(test_program(), transforms::Schedule{},
                               steady_clock::now() - milliseconds(1));
  // Shed requests come back as already-failed futures: ready with no wait.
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_THROW(future.get(), serve::DeadlineExceededError);

  const serve::ServeStats stats = service.stats();
  EXPECT_EQ(stats.shed_requests, 1u);
  EXPECT_EQ(stats.requests, 0u);
  // The featurizer (and its cache) was never touched.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 0u);
}

TEST(PredictionServiceResilience, DefaultDeadlineExpiresWhileQueuedAndShedsAtBatchAssemble) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::ServeOptions options = fast_options(1);
  options.max_batch = 64;
  // The batch window (100ms) far exceeds the server default deadline (5ms):
  // a lone request expires while waiting for company and must be shed at
  // batch assemble instead of burning a forward pass.
  options.max_queue_latency = std::chrono::microseconds(100'000);
  options.default_deadline = milliseconds(5);
  serve::PredictionService service(cost_model, options);

  auto future = service.submit(featurize_or_die(test_program(), {}));
  EXPECT_THROW(future.get(), serve::DeadlineExceededError);
  const serve::ServeStats stats = service.stats();
  EXPECT_EQ(stats.shed_requests, 1u);
  EXPECT_EQ(stats.batches, 0u);  // the expired batch never reached inference
}

TEST(PredictionServiceResilience, ExplicitDeadlineTightensTheServerDefault) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::ServeOptions options = fast_options(1);
  options.default_deadline = milliseconds(60'000);  // generous server default
  serve::PredictionService service(cost_model, options);
  // An explicit, already-expired client deadline wins over the big default.
  auto future = service.submit(featurize_or_die(test_program(), {}),
                               steady_clock::now() - milliseconds(1));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_THROW(future.get(), serve::DeadlineExceededError);
  // And a request without one still completes (default applied, not expired).
  EXPECT_GT(service.submit(featurize_or_die(test_program(), {})).get().speedup, 0.0);
}

TEST(PredictionServiceResilience, SaturatedQueueShedsNewArrivalsAndServesTheAdmitted) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::ServeOptions options = fast_options(1);
  options.max_batch = 64;
  options.max_queue_latency = std::chrono::microseconds(60'000'000);  // no timer flush
  options.admission_queue_cap = 4;
  serve::PredictionService service(cost_model, options);

  auto feats = featurize_or_die(test_program(), {});
  const double expected = direct_prediction(cost_model, *feats);

  std::vector<std::future<serve::Prediction>> admitted;
  for (int i = 0; i < 4; ++i) admitted.push_back(service.submit(feats));
  EXPECT_EQ(service.pending(), 4u);

  // Queue at the hard cap: the next arrival fails fast, no queue growth.
  auto shed = service.submit(feats);
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_THROW(shed.get(), serve::AdmissionRejectedError);
  EXPECT_EQ(service.pending(), 4u);

  // The admitted requests are untouched by the shedding around them:
  // bitwise-identical to direct single-threaded inference.
  service.flush();
  for (auto& f : admitted) EXPECT_EQ(f.get().speedup, expected);

  const serve::ServeStats stats = service.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.shed_requests, 1u);
  EXPECT_EQ(stats.failed_requests, 0u);  // shed != failed

  // With the queue drained the workers walk the ladder back to normal.
  const auto wait_until = steady_clock::now() + std::chrono::seconds(10);
  while (service.stats().degradation_level != 0 && steady_clock::now() < wait_until)
    std::this_thread::sleep_for(milliseconds(1));
  EXPECT_EQ(service.stats().degradation_level, 0);
}

// Saturation hammer: concurrent clients against a tiny queue. Every future
// resolves (served or shed, never hung), accepted requests stay
// bitwise-correct, and the queue never exceeds its cap.
TEST(PredictionServiceResilience, OverloadHammerBoundsTheQueueAndNeverWedges) {
  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::ServeOptions options = fast_options(2);
  options.max_batch = 4;
  options.admission_queue_cap = 8;
  serve::PredictionService service(cost_model, options);

  auto feats = featurize_or_die(test_program(), {});
  const double expected = direct_prediction(cost_model, *feats);

  std::atomic<std::uint64_t> served{0}, shed{0}, wrong{0}, unexpected_errors{0};
  std::atomic<std::uint64_t> max_pending{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        const std::uint64_t depth = service.pending();
        std::uint64_t seen = max_pending.load();
        while (depth > seen && !max_pending.compare_exchange_weak(seen, depth)) {
        }
        auto future = service.submit(feats);
        try {
          if (future.get().speedup != expected) ++wrong;
          ++served;
        } catch (const serve::AdmissionRejectedError&) {
          ++shed;
        } catch (...) {
          ++unexpected_errors;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(served.load() + shed.load(), 4u * 200u);
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(unexpected_errors.load(), 0u);
  EXPECT_GT(served.load(), 0u);
  EXPECT_LE(max_pending.load(), 8u);  // the cap actually bounds the queue
  const serve::ServeStats stats = service.stats();
  EXPECT_EQ(stats.requests, served.load());
  EXPECT_EQ(stats.shed_requests, shed.load());
}

// ---------------------------------------------------------------------------
// Failpoints: framework semantics (always compiled) ...
// ---------------------------------------------------------------------------

class FailpointGuard {
 public:
  ~FailpointGuard() { support::failpoint_disarm_all(); }
};

TEST(Failpoint, SpecGrammarRejectsGarbageAndArmsPairs) {
  FailpointGuard guard;
  std::string error;
  EXPECT_FALSE(support::failpoint_arm("x", "explode", &error));
  EXPECT_NE(error.find("unknown action"), std::string::npos);
  EXPECT_FALSE(support::failpoint_arm_spec("no-equals-sign", &error));

  EXPECT_TRUE(support::failpoint_arm_spec(
      "registry.fsync=2*error;batcher.stall=delay(5);registry.promote=crash", &error))
      << error;
  const std::vector<std::string> armed = support::failpoint_armed();
  EXPECT_EQ(armed.size(), 3u);
  support::failpoint_disarm("batcher.stall");
  EXPECT_EQ(support::failpoint_armed().size(), 2u);
  support::failpoint_disarm_all();
  EXPECT_TRUE(support::failpoint_armed().empty());
}

// ... and fault injection (need the compiled-in sites).

TEST(Failpoint, InferThrowFailsOnlyTheArmedBatch) {
  if (!support::failpoints_compiled())
    GTEST_SKIP() << "build with -DTCM_FAILPOINTS=ON for fault injection";
  FailpointGuard guard;

  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  serve::ServeOptions options = fast_options(1);
  options.max_batch = 2;
  serve::PredictionService service(cost_model, options);
  auto feats = featurize_or_die(test_program(), {});

  ASSERT_TRUE(support::failpoint_arm("infer.throw", "1*error"));
  auto a = service.submit(feats);
  auto b = service.submit(feats);  // fills the batch: pops immediately
  EXPECT_THROW(a.get(), std::runtime_error);
  EXPECT_THROW(b.get(), std::runtime_error);
  EXPECT_EQ(support::failpoint_hits("infer.throw"), 1u);

  // The blast radius is one batch: the service keeps serving afterwards.
  auto c = service.submit(feats);
  auto d = service.submit(feats);
  EXPECT_GT(c.get().speedup, 0.0);
  EXPECT_GT(d.get().speedup, 0.0);
  const serve::ServeStats stats = service.stats();
  EXPECT_EQ(stats.failed_requests, 2u);
  EXPECT_EQ(stats.requests, 2u);
}

TEST(Failpoint, TransientRegistryIoErrorsAreRetriedAway) {
  if (!support::failpoints_compiled())
    GTEST_SKIP() << "build with -DTCM_FAILPOINTS=ON for fault injection";
  FailpointGuard guard;

  const fs::path root = fs::path(::testing::TempDir()) / "tcm_resilience_retry";
  fs::remove_all(root);
  registry::ModelRegistry registry(root.string());
  Rng rng(7);
  model::CostModel m(model::ModelConfig::fast(), rng);
  registry::ModelManifest manifest;
  manifest.config = model::ModelConfig::fast();

  // Two injected fsync failures: absorbed by the 3-attempt retry budget, so
  // the registration still succeeds end to end.
  ASSERT_TRUE(support::failpoint_arm("registry.fsync", "2*error"));
  const int version = registry.register_version(m, manifest);
  EXPECT_EQ(version, 1);
  EXPECT_GE(support::failpoint_hits("registry.fsync"), 2u);
  registry.promote(version);
  EXPECT_EQ(registry.active_version(), 1);
  EXPECT_NO_THROW(registry.load_active());
}

TEST(Failpoint, PersistentRegistryIoErrorsSurfaceAfterTheRetryBudget) {
  if (!support::failpoints_compiled())
    GTEST_SKIP() << "build with -DTCM_FAILPOINTS=ON for fault injection";
  FailpointGuard guard;

  const fs::path root = fs::path(::testing::TempDir()) / "tcm_resilience_retry_fail";
  fs::remove_all(root);
  registry::ModelRegistry registry(root.string());
  Rng rng(7);
  model::CostModel m(model::ModelConfig::fast(), rng);
  registry::ModelManifest manifest;
  manifest.config = model::ModelConfig::fast();

  ASSERT_TRUE(support::failpoint_arm("registry.fsync", "error"));  // every time
  EXPECT_THROW(registry.register_version(m, manifest), std::runtime_error);
  support::failpoint_disarm_all();
  // The failed registration left no half-published version behind.
  EXPECT_TRUE(registry.list().empty());
  EXPECT_EQ(registry.register_version(m, manifest), 1);
}

TEST(FailpointDeathTest, CrashMidPromoteLeavesARecoverableRegistry) {
  if (!support::failpoints_compiled())
    GTEST_SKIP() << "build with -DTCM_FAILPOINTS=ON for fault injection";
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";

  const fs::path root = fs::path(::testing::TempDir()) / "tcm_resilience_crash";
  fs::remove_all(root);
  Rng rng(7);
  model::CostModel m(model::ModelConfig::fast(), rng);
  registry::ModelManifest manifest;
  manifest.config = model::ModelConfig::fast();
  int v1 = 0, v2 = 0;
  {
    registry::ModelRegistry registry(root.string());
    v1 = registry.register_version(m, manifest);
    registry.promote(v1);
    v2 = registry.register_version(m, manifest);
  }

  // The child process arms the crash and dies inside the ACTIVE update —
  // a simulated power cut at the most sensitive registry write.
  EXPECT_DEATH(
      {
        support::failpoint_arm("registry.promote", "crash");
        registry::ModelRegistry victim(root.string());
        victim.promote(v2);
      },
      "injected crash");

  // Recovery: reopening sweeps any stale temporaries; the ACTIVE pointer is
  // intact (old or new, never torn) and still loads.
  registry::ModelRegistry recovered(root.string());
  const int active = recovered.active_version();
  EXPECT_TRUE(active == v1 || active == v2) << "active=" << active;
  EXPECT_NO_THROW(recovered.load_active());
  recovered.promote(v2);  // and the interrupted promote can simply be re-run
  EXPECT_EQ(recovered.active_version(), v2);
}

}  // namespace
}  // namespace tcm
