#include <gtest/gtest.h>

#include <cmath>

#include "baselines/halide_data.h"
#include "baselines/halide_features.h"
#include "baselines/halide_model.h"
#include "benchsuite/benchmarks.h"
#include "search/beam_search.h"
#include "support/stats.h"
#include "transforms/apply.h"

namespace tcm::baselines {
namespace {

// ---------------------------------------------------------------------------
// Featurizer
// ---------------------------------------------------------------------------

TEST(HalideFeatures, CountAndNamesAgree) {
  EXPECT_EQ(static_cast<int>(halide_feature_names().size()), kHalideFeatureCount);
  const ir::Program p = benchsuite::make_heat2d(64, 64);
  const auto f = halide_features(p, 0, sim::MachineSpec::xeon_e5_2680v3());
  EXPECT_EQ(static_cast<int>(f.size()), kHalideFeatureCount);
}

TEST(HalideFeatures, ReflectScheduleState) {
  const ir::Program p = benchsuite::make_heat2d(256, 256);
  transforms::Schedule s;
  s.tiles.push_back({0, 0, {32, 32}});
  s.parallels.push_back({0, 0});
  s.vectorizes.push_back({0, 8});
  s.unrolls.push_back({0, 4});
  const ir::Program t = transforms::apply_schedule(p, s);
  const sim::MachineSpec spec;
  const auto f0 = halide_features(p, 0, spec);
  const auto f1 = halide_features(t, 0, spec);
  const auto& names = halide_feature_names();
  auto idx = [&](const std::string& n) {
    return static_cast<std::size_t>(
        std::find(names.begin(), names.end(), n) - names.begin());
  };
  EXPECT_EQ(f0[idx("is_parallel")], 0.0f);
  EXPECT_EQ(f1[idx("is_parallel")], 1.0f);
  EXPECT_EQ(f0[idx("is_vectorized")], 0.0f);
  EXPECT_EQ(f1[idx("is_vectorized")], 1.0f);
  EXPECT_EQ(f0[idx("num_tiled_loops")], 0.0f);
  EXPECT_GT(f1[idx("num_tiled_loops")], 0.0f);
  EXPECT_GT(f1[idx("unroll_factor")], 0.0f);
}

TEST(HalideFeatures, OpCountsCaptured) {
  const ir::Program p = benchsuite::make_cvtcolor(64, 64);
  const auto f = halide_features(p, 0, sim::MachineSpec());
  // cvtcolor: 2 adds, 3 muls.
  EXPECT_NEAR(f[0], std::log1p(2.0), 1e-5);
  EXPECT_NEAR(f[2], std::log1p(3.0), 1e-5);
}

TEST(HalideFeatures, StrideHistogramDistinguishesTransposedAccess) {
  const ir::Program row = benchsuite::make_heat2d(64, 64);
  const auto f_row = halide_features(row, 0, sim::MachineSpec());
  const ir::Program mvt = benchsuite::make_mvt(64);  // comp 1 reads A[j][i]
  const auto f_col = halide_features(mvt, 1, sim::MachineSpec());
  const auto& names = halide_feature_names();
  const auto big = static_cast<std::size_t>(
      std::find(names.begin(), names.end(), "loads_stride_big") - names.begin());
  EXPECT_EQ(f_row[big], 0.0f);
  EXPECT_GT(f_col[big], 0.0f);
}

// ---------------------------------------------------------------------------
// Model & training
// ---------------------------------------------------------------------------

TEST(HalideModel, PredictsPositiveTimes) {
  Rng rng(1);
  HalideCostModel model({}, rng);
  const ir::Program p = benchsuite::make_heat2d(128, 128);
  EXPECT_GT(model.predict_seconds(p, sim::MachineSpec()), 0.0);
}

TEST(HalideModel, TrainingReducesLoss) {
  HalideDataOptions data_opt;
  data_opt.num_programs = 40;
  data_opt.schedules_per_program = 6;
  const auto samples = build_halide_samples(data_opt);
  ASSERT_GT(samples.size(), 100u);
  Rng rng(2);
  HalideCostModel model({}, rng);
  HalideTrainOptions topt;
  topt.epochs = 20;
  const auto losses = train_halide_model(model, samples, topt);
  EXPECT_LT(losses.back(), 0.5 * losses.front());
}

TEST(HalideModel, LearnsTimeRankingOnItsDomain) {
  HalideDataOptions data_opt;
  data_opt.num_programs = 60;
  data_opt.schedules_per_program = 8;
  auto samples = build_halide_samples(data_opt);
  // Hold out every 5th sample.
  std::vector<HalideSample> train, test;
  for (std::size_t i = 0; i < samples.size(); ++i)
    (i % 5 == 0 ? test : train).push_back(samples[i]);
  Rng rng(3);
  HalideCostModel model({}, rng);
  HalideTrainOptions topt;
  topt.epochs = 30;
  train_halide_model(model, train, topt);
  std::vector<double> y, yhat;
  for (auto& s : test) {
    y.push_back(std::log(s.measured_seconds));
    yhat.push_back(std::log(model.predict_seconds(s.comp_features)));
  }
  EXPECT_GT(pearson(y, yhat), 0.6);
}

TEST(HalideEvaluator, PluggedIntoBeamSearch) {
  Rng rng(4);
  HalideCostModel model({}, rng);
  HalideEvaluator eval(&model, sim::MachineSpec());
  const ir::Program p = benchsuite::make_heat2d(128, 128);
  const auto result = search::beam_search(p, eval, {});
  EXPECT_TRUE(transforms::is_legal(p, result.best_schedule));
  EXPECT_GT(result.evaluations, 0);
  EXPECT_STREQ(eval.kind(), "halide-baseline");
}

TEST(HalideData, SamplesCarryFeaturesAndTimes) {
  HalideDataOptions opt;
  opt.num_programs = 5;
  opt.schedules_per_program = 3;
  const auto samples = build_halide_samples(opt);
  ASSERT_GT(samples.size(), 0u);
  for (const auto& s : samples) {
    EXPECT_GT(s.measured_seconds, 0.0);
    ASSERT_GT(s.comp_features.size(), 0u);
    for (const auto& f : s.comp_features)
      EXPECT_EQ(static_cast<int>(f.size()), kHalideFeatureCount);
  }
}

TEST(HalideData, BiasedGeneratorIsShallow) {
  const auto g = HalideDataOptions::image_dl_biased_generator();
  EXPECT_LE(g.max_depth, 3);
  EXPECT_LT(g.p_reduction, 0.2);
}

}  // namespace
}  // namespace tcm::baselines
