// Tests for the model registry (src/registry/): versioned checkpoints,
// manifest integrity, promote/rollback, and the continual-learning loop.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>

#include "datagen/generator.h"
#include "model/cost_model.h"
#include "model/train.h"
#include "registry/continual_scheduler.h"
#include "registry/continual_trainer.h"
#include "registry/model_registry.h"
#include "serve/drift_monitor.h"
#include "serve/feedback_buffer.h"
#include "serve/prediction_service.h"

namespace fs = std::filesystem;

namespace tcm::registry {
namespace {

// Fresh scratch directory per test.
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("tcm_registry_" + name);
  fs::remove_all(dir);
  return dir.string();
}

ir::Program test_program(std::uint64_t seed = 0) {
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  return gen.generate(seed);
}

std::vector<double> direct_predictions(model::SpeedupPredictor& m,
                                       const std::vector<model::FeaturizedProgram>& feats) {
  std::vector<double> out;
  Rng rng(0);
  for (const auto& f : feats) {
    const model::Batch batch = model::make_inference_batch({&f});
    out.push_back(static_cast<double>(
        m.forward_batch(batch, /*training=*/false, rng).value().at(0, 0)));
  }
  return out;
}

// gtest's ASSERT_ macros require a void function; fill through a pointer.
void sample_requests_into(int count, std::vector<model::FeaturizedProgram>* out) {
  datagen::RandomScheduleGenerator sgen;
  Rng rng(3);
  for (int i = 0; i < count; ++i) {
    const ir::Program p = test_program(static_cast<std::uint64_t>(i % 3));
    const transforms::Schedule s = sgen.generate(p, rng);
    auto f = model::featurize(p, s, model::FeatureConfig::fast());
    ASSERT_TRUE(f.has_value()) << "test featurization failed";
    out->push_back(std::move(*f));
  }
}

ModelManifest fast_manifest(const std::string& provenance = "test") {
  ModelManifest m;
  m.config = model::ModelConfig::fast();
  m.provenance = provenance;
  return m;
}

// ---------------------------------------------------------------------------
// Feature-config hashing and manifest round-trip
// ---------------------------------------------------------------------------

TEST(FeatureConfigHash, DeterministicAndDiscriminating) {
  const model::FeatureConfig fast = model::FeatureConfig::fast();
  EXPECT_EQ(feature_config_hash(fast), feature_config_hash(model::FeatureConfig::fast()));
  EXPECT_NE(feature_config_hash(fast), feature_config_hash(model::FeatureConfig::paper()));
  model::FeatureConfig tweaked = fast;
  tweaked.log_transform = !tweaked.log_transform;
  EXPECT_NE(feature_config_hash(fast), feature_config_hash(tweaked));
}

TEST(ModelManifest, TextRoundTripPreservesEverything) {
  ModelManifest m = fast_manifest("fine-tuned v3 on 2400 fresh samples");
  m.version = 7;
  m.model_kind = "recursive-lstm";
  m.parent_version = 3;
  m.created_unix = 1700000000;
  m.feature_hash = feature_config_hash(m.config.features);
  m.metrics.mape = 0.21875;
  m.metrics.pearson = 0.875;
  m.metrics.spearman = 0.9375;
  m.metrics.r2 = 0.8125;
  m.metrics.mse = 0.0625;
  m.metrics.n = 480;

  const ModelManifest r = manifest_from_string(manifest_to_string(m));
  EXPECT_EQ(r.version, m.version);
  EXPECT_EQ(r.model_kind, m.model_kind);
  EXPECT_EQ(r.parent_version, m.parent_version);
  EXPECT_EQ(r.created_unix, m.created_unix);
  EXPECT_EQ(r.feature_hash, m.feature_hash);
  EXPECT_EQ(r.provenance, m.provenance);
  EXPECT_EQ(r.config.features.max_depth, m.config.features.max_depth);
  EXPECT_EQ(r.config.features.max_accesses, m.config.features.max_accesses);
  EXPECT_EQ(r.config.embed_hidden, m.config.embed_hidden);
  EXPECT_EQ(r.config.embed_size, m.config.embed_size);
  EXPECT_EQ(r.config.merge_hidden, m.config.merge_hidden);
  EXPECT_EQ(r.config.regress_hidden, m.config.regress_hidden);
  EXPECT_EQ(r.config.dropout, m.config.dropout);
  EXPECT_EQ(r.config.exp_head_limit, m.config.exp_head_limit);
  EXPECT_EQ(r.metrics.mape, m.metrics.mape);
  EXPECT_EQ(r.metrics.spearman, m.metrics.spearman);
  EXPECT_EQ(r.metrics.n, m.metrics.n);
}

TEST(ModelManifest, RejectsGarbage) {
  EXPECT_THROW(manifest_from_string(""), std::runtime_error);
  EXPECT_THROW(manifest_from_string("not-a-manifest 1\nversion 1\n"), std::runtime_error);
  EXPECT_THROW(manifest_from_string("tcm-manifest 99\n"), std::runtime_error);
  // Parseable header but no version/kind.
  EXPECT_THROW(manifest_from_string("tcm-manifest 1\nparent 0\n"), std::runtime_error);
  // A torn scalar value must throw, not silently keep the field's default.
  EXPECT_THROW(manifest_from_string(
                   "tcm-manifest 1\nversion 1\nmodel recursive-lstm\nembed_size garbage\n"),
               std::runtime_error);
  EXPECT_THROW(manifest_from_string(
                   "tcm-manifest 1\nversion 1\nmodel recursive-lstm\nmetrics.mape x\n"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Registry storage
// ---------------------------------------------------------------------------

TEST(ModelRegistry, RegisteredModelReloadsBitwiseIdentical) {
  ModelRegistry registry(scratch_dir("roundtrip"));
  Rng rng(42);
  model::CostModel original(model::ModelConfig::fast(), rng);

  const int version = registry.register_version(original, fast_manifest());
  EXPECT_EQ(version, 1);

  std::vector<model::FeaturizedProgram> requests;
  sample_requests_into(12, &requests);
  const std::vector<double> before = direct_predictions(original, requests);

  std::unique_ptr<model::SpeedupPredictor> reloaded = registry.load(version);
  EXPECT_EQ(reloaded->name(), "recursive-lstm");
  const std::vector<double> after = direct_predictions(*reloaded, requests);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i], after[i]) << "request " << i;  // bitwise, not approx
}

TEST(ModelRegistry, RegisterFillsManifestFields) {
  ModelRegistry registry(scratch_dir("fields"));
  Rng rng(1);
  model::CostModel m(model::ModelConfig::fast(), rng);
  ModelManifest manifest = fast_manifest("from scratch");
  manifest.version = 999;       // overwritten by register_version
  manifest.feature_hash = 123;  // recomputed from the config
  const int version = registry.register_version(m, manifest);

  const ModelManifest stored = registry.manifest(version);
  EXPECT_EQ(stored.version, version);
  EXPECT_EQ(stored.model_kind, "recursive-lstm");  // defaulted from model.name()
  EXPECT_EQ(stored.feature_hash, feature_config_hash(manifest.config.features));
  EXPECT_GT(stored.created_unix, 0);
  EXPECT_EQ(stored.provenance, "from scratch");
}

TEST(ModelRegistry, MismatchedFeatureHashRejectedAtLoad) {
  ModelRegistry registry(scratch_dir("tamper"));
  Rng rng(1);
  model::CostModel m(model::ModelConfig::fast(), rng);
  const int version = registry.register_version(m, fast_manifest());

  // Tamper with the stored featurization (as a config drift or torn write
  // would): the hash no longer matches and serving must refuse the load.
  ModelManifest tampered = registry.manifest(version);
  tampered.config.features.max_accesses += 1;
  {
    std::ofstream f(registry.manifest_path(version), std::ios::trunc);
    f << manifest_to_string(tampered);
  }
  EXPECT_THROW(registry.load(version), std::runtime_error);
  // The manifest itself still parses; only load-for-serving rejects.
  EXPECT_NO_THROW(registry.manifest(version));
}

TEST(ModelRegistry, PreSchemaRevCheckpointRejectedWhileIncumbentServes) {
  // A checkpoint written before the featurization schema rev (skew /
  // unimodular features) has no features.schema_version key and a feature
  // hash that never mixed the schema version. Loading it must fail with a
  // message naming the hash mismatch, and the already-promoted incumbent
  // must keep serving.
  ModelRegistry registry(scratch_dir("schema_rev"));
  Rng rng(1);
  model::CostModel incumbent(model::ModelConfig::fast(), rng);
  model::CostModel old_model(model::ModelConfig::fast(), rng);
  const int v1 = registry.register_version(incumbent, fast_manifest("incumbent"));
  registry.promote(v1);
  const int v2 = registry.register_version(old_model, fast_manifest("pre-rev checkpoint"));

  // Rewrite v2's manifest as the pre-rev code would have written it: no
  // schema_version line. The parser defaults it to 1, so the recomputed
  // hash can no longer match the stored one.
  std::string text = manifest_to_string(registry.manifest(v2));
  const std::size_t line = text.find("features.schema_version");
  ASSERT_NE(line, std::string::npos);
  text.erase(line, text.find('\n', line) - line + 1);
  {
    std::ofstream f(registry.manifest_path(v2), std::ios::trunc);
    f << text;
  }

  try {
    registry.load(v2);
    FAIL() << "pre-rev checkpoint must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("hash mismatch"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("feature schema"), std::string::npos) << e.what();
  }
  // promote() would hand traffic to an unservable model; the load failure
  // surfaces before any pointer flips, so the incumbent stays active.
  EXPECT_EQ(registry.active_version(), v1);
  EXPECT_NO_THROW(registry.load_active());
  const ModelManifest parsed = manifest_from_string(text);
  EXPECT_EQ(parsed.config.features.schema_version, 1);  // old default
}

TEST(ModelRegistry, LoadRejectsUnknownVersionAndKind) {
  ModelRegistry registry(scratch_dir("unknown"));
  EXPECT_THROW(registry.load(1), std::runtime_error);
  EXPECT_THROW(registry.manifest(7), std::runtime_error);
  EXPECT_THROW(make_model([] {
                 ModelManifest m = fast_manifest();
                 m.model_kind = "transformer-xxl";
                 return m;
               }()),
               std::runtime_error);
}

TEST(ModelRegistry, NoStagingLeftoversAfterRegister) {
  const std::string root = scratch_dir("clean");
  ModelRegistry registry(root);
  Rng rng(1);
  model::CostModel m(model::ModelConfig::fast(), rng);
  registry.register_version(m, fast_manifest());
  registry.promote(1);
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".staging"), std::string::npos) << name;
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
}

TEST(ModelRegistry, PromoteRollbackAndList) {
  ModelRegistry registry(scratch_dir("lifecycle"));
  Rng rng(1);
  model::CostModel a(model::ModelConfig::fast(), rng);
  model::CostModel b(model::ModelConfig::fast(), rng);
  EXPECT_EQ(registry.active_version(), 0);
  EXPECT_THROW(registry.load_active(), std::runtime_error);
  EXPECT_THROW(registry.rollback(), std::runtime_error);

  ModelManifest mb = fast_manifest("v2");
  mb.parent_version = 1;
  const int v1 = registry.register_version(a, fast_manifest("v1"));
  const int v2 = registry.register_version(b, mb);
  EXPECT_EQ(v1, 1);
  EXPECT_EQ(v2, 2);

  registry.promote(v1);
  EXPECT_EQ(registry.active_version(), v1);
  EXPECT_EQ(registry.previous_version(), 0);
  EXPECT_THROW(registry.rollback(), std::runtime_error);  // nothing before v1

  registry.promote(v2);
  EXPECT_EQ(registry.active_version(), v2);
  EXPECT_EQ(registry.previous_version(), v1);

  EXPECT_EQ(registry.rollback(), v1);
  EXPECT_EQ(registry.active_version(), v1);
  EXPECT_EQ(registry.previous_version(), v2);  // roll-forward stays possible

  EXPECT_THROW(registry.promote(99), std::runtime_error);

  const std::vector<ModelManifest> all = registry.list();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].version, 1);
  EXPECT_EQ(all[1].version, 2);
  EXPECT_EQ(all[1].parent_version, 1);
  EXPECT_NO_THROW(registry.load_active());
}

TEST(ModelRegistry, ReopeningSeesExistingState) {
  const std::string root = scratch_dir("reopen");
  {
    ModelRegistry registry(root);
    Rng rng(1);
    model::CostModel m(model::ModelConfig::fast(), rng);
    registry.register_version(m, fast_manifest());
    registry.promote(1);
  }
  ModelRegistry reopened(root);
  EXPECT_EQ(reopened.active_version(), 1);
  EXPECT_EQ(reopened.list().size(), 1u);
  Rng rng(2);
  model::CostModel another(model::ModelConfig::fast(), rng);
  EXPECT_EQ(reopened.register_version(another, fast_manifest()), 2);
}

// ---------------------------------------------------------------------------
// Retention GC
// ---------------------------------------------------------------------------

std::string read_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

TEST(ModelRegistry, GcKeepsActiveLineageAndNewestAndExpiresRejected) {
  ModelRegistry registry(scratch_dir("gc"));
  Rng rng(3);
  model::CostModel m(model::ModelConfig::fast(), rng);

  // v1 -> v2 promoted lineage; v3..v5 rejected candidates parented to v2.
  const int v1 = registry.register_version(m, fast_manifest("seed"));
  ModelManifest child = fast_manifest("promoted child");
  child.parent_version = v1;
  const int v2 = registry.register_version(m, child);
  registry.promote(v1);
  registry.promote(v2);  // active v2, previous v1
  std::vector<int> rejected;
  for (int i = 0; i < 3; ++i) {
    ModelManifest r = fast_manifest("rejected candidate");
    r.parent_version = v2;
    rejected.push_back(registry.register_version(m, r));
  }
  ASSERT_EQ(rejected.back(), 5);

  const std::string active_weights_before = read_bytes(registry.weights_path(v2));
  ASSERT_FALSE(active_weights_before.empty());

  GcPolicy policy;
  policy.keep_last = 1;  // newest (v5) survives as the post-mortem window
  const GcReport report = registry.gc(policy);
  EXPECT_EQ(report.removed, (std::vector<int>{3, 4}));
  EXPECT_EQ(report.kept, (std::vector<int>{1, 2, 5}));

  // ACTIVE and the rollback target stay loadable, bit for bit.
  EXPECT_EQ(read_bytes(registry.weights_path(v2)), active_weights_before);
  EXPECT_NO_THROW(registry.load_active());
  EXPECT_NO_THROW(registry.load(v1));
  EXPECT_EQ(registry.active_version(), v2);
  EXPECT_EQ(registry.previous_version(), v1);

  // Expired versions are gone from disk and from the listing.
  EXPECT_THROW(registry.load(3), std::runtime_error);
  EXPECT_FALSE(fs::exists(registry.version_dir(4)));
  const std::vector<ModelManifest> all = registry.list();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all.back().version, 5);

  // Idempotent: a second pass with the same policy removes nothing.
  EXPECT_TRUE(registry.gc(policy).removed.empty());
  // No trash or staging residue survives a collection.
  for (const auto& entry : fs::directory_iterator(registry.root()))
    EXPECT_EQ(entry.path().filename().string().find(".gc-"), std::string::npos);

  // New versions keep numbering past collected ids: no id reuse.
  EXPECT_EQ(registry.register_version(m, fast_manifest("after gc")), 6);
}

TEST(ModelRegistry, GcWithoutActivePointerKeepsOnlyNewest) {
  ModelRegistry registry(scratch_dir("gc_noactive"));
  Rng rng(4);
  model::CostModel m(model::ModelConfig::fast(), rng);
  for (int i = 0; i < 4; ++i) registry.register_version(m, fast_manifest());
  GcPolicy policy;
  policy.keep_last = 2;
  const GcReport report = registry.gc(policy);
  EXPECT_EQ(report.removed, (std::vector<int>{1, 2}));
  EXPECT_EQ(report.kept, (std::vector<int>{3, 4}));
}

// ---------------------------------------------------------------------------
// Crash-injection durability: a writer killed between staging and rename
// must leave a registry that reopens clean, with committed state intact.
// ---------------------------------------------------------------------------

TEST(ModelRegistry, ReopenSweepsCrashedWriterLeftovers) {
  const std::string root = scratch_dir("crash");
  std::string weights_before;
  {
    ModelRegistry registry(root);
    Rng rng(1);
    model::CostModel m(model::ModelConfig::fast(), rng);
    registry.register_version(m, fast_manifest());
    registry.promote(1);
    weights_before = read_bytes(registry.weights_path(1));
  }

  // Simulate a crash at every vulnerable point of the write protocol:
  // mid-register (a staged version directory with a half-written manifest),
  // mid-promote (an ACTIVE.tmp that was never renamed), and mid-gc (a trash
  // directory that was unpublished but not yet deleted).
  fs::create_directories(fs::path(root) / ".staging-v0002");
  { std::ofstream f(fs::path(root) / ".staging-v0002" / "weights.bin"); f << "torn"; }
  { std::ofstream f(fs::path(root) / ".staging-v0002" / "manifest.txt.tmp"); f << "to"; }
  { std::ofstream f(fs::path(root) / "ACTIVE.tmp"); f << "tcm-active 1\nactive 99\n"; }
  fs::create_directories(fs::path(root) / ".gc-v0003");
  { std::ofstream f(fs::path(root) / ".gc-v0003" / "weights.bin"); f << "junk"; }

  ModelRegistry reopened(root);
  // Stale state is swept...
  EXPECT_FALSE(fs::exists(fs::path(root) / ".staging-v0002"));
  EXPECT_FALSE(fs::exists(fs::path(root) / "ACTIVE.tmp"));
  EXPECT_FALSE(fs::exists(fs::path(root) / ".gc-v0003"));
  // ...committed state is untouched: same active version, bitwise-identical
  // checkpoint, and registration resumes at the next id.
  EXPECT_EQ(reopened.active_version(), 1);
  EXPECT_EQ(reopened.list().size(), 1u);
  EXPECT_EQ(read_bytes(reopened.weights_path(1)), weights_before);
  EXPECT_NO_THROW(reopened.load_active());
  Rng rng(2);
  model::CostModel another(model::ModelConfig::fast(), rng);
  EXPECT_EQ(reopened.register_version(another, fast_manifest()), 2);
}

// ---------------------------------------------------------------------------
// ContinualTrainer
// ---------------------------------------------------------------------------

datagen::DatasetBuildOptions tiny_data() {
  datagen::DatasetBuildOptions data;
  data.num_programs = 10;
  data.schedules_per_program = 6;
  data.generator = datagen::GeneratorOptions::tiny();
  data.features = model::FeatureConfig::fast();
  return data;
}

serve::ServeOptions trainer_serve_options() {
  serve::ServeOptions options;
  options.num_threads = 2;
  options.features = model::FeatureConfig::fast();
  options.max_queue_latency = std::chrono::microseconds(500);
  return options;
}

TEST(ContinualTrainer, RequiresActiveVersionAndMatchingFeatures) {
  ModelRegistry registry(scratch_dir("trainer_guards"));
  Rng rng(1);
  model::CostModel m(model::ModelConfig::fast(), rng);
  serve::PredictionService service(m, trainer_serve_options());

  ContinualTrainerOptions opts;
  opts.data = tiny_data();
  EXPECT_THROW(ContinualTrainer(registry, service, opts), std::runtime_error);  // no active

  registry.register_version(m, fast_manifest());
  registry.promote(1);
  ContinualTrainerOptions mismatched = opts;
  mismatched.data.features = model::FeatureConfig::paper();
  EXPECT_THROW(ContinualTrainer(registry, service, mismatched), std::runtime_error);
  EXPECT_NO_THROW(ContinualTrainer(registry, service, opts));
}

TEST(ContinualTrainer, CyclePromotesAndHotSwapsOrRejectsCleanly) {
  ModelRegistry registry(scratch_dir("trainer_cycle"));
  Rng rng(5);
  model::CostModel seed_model(model::ModelConfig::fast(), rng);
  const int v1 = registry.register_version(seed_model, fast_manifest("seed"));
  registry.promote(v1);

  std::shared_ptr<model::SpeedupPredictor> serving = registry.load_active();
  serve::PredictionService service(serving, v1, trainer_serve_options());
  EXPECT_EQ(service.active_version(), v1);

  ContinualTrainerOptions opts;
  opts.data = tiny_data();
  opts.train.epochs = 3;
  opts.train.seed = 9;
  // An untrained incumbent fine-tuned on real measurements improves, but the
  // gate must hold either way; accept promotion generously here.
  opts.max_mape_regression = 10.0;
  opts.min_shadow_spearman = -1.0;
  ContinualTrainer trainer(registry, service, opts);

  const CycleReport report = trainer.run_cycle();
  EXPECT_EQ(report.incumbent_version, v1);
  EXPECT_EQ(report.candidate_version, v1 + 1);
  EXPECT_GT(report.shadow_requests, 0u);
  EXPECT_EQ(report.shadow_failures, 0u);
  ASSERT_TRUE(report.promoted) << report.decision;
  EXPECT_EQ(registry.active_version(), report.candidate_version);
  EXPECT_EQ(service.active_version(), report.candidate_version);
  EXPECT_EQ(registry.manifest(report.candidate_version).parent_version, v1);

  // A second cycle with an impossible gate must reject without touching the
  // active version or the serving snapshot.
  ContinualTrainerOptions strict = opts;
  strict.max_mape_regression = -1.0;  // ceiling below any achievable MAPE
  ContinualTrainer strict_trainer(registry, service, strict);
  const CycleReport rejected = strict_trainer.run_cycle();
  EXPECT_FALSE(rejected.promoted);
  EXPECT_EQ(registry.active_version(), report.candidate_version);
  EXPECT_EQ(service.active_version(), report.candidate_version);
  // The rejected candidate still exists in the registry for post-mortems.
  EXPECT_EQ(registry.list().back().version, rejected.candidate_version);

  // Rollback restores the original seed version end to end.
  EXPECT_EQ(trainer.rollback(), v1);
  EXPECT_EQ(registry.active_version(), v1);
  EXPECT_EQ(service.active_version(), v1);
}

// ---------------------------------------------------------------------------
// ContinualScheduler: the drift-triggered autopilot
// ---------------------------------------------------------------------------

// Replays a burst of raw (program, schedule) pairs so the service's
// recent-prediction window and (when wired) feedback buffer fill up.
void drive_traffic(serve::PredictionService& service, int requests, std::uint64_t seed) {
  datagen::RandomScheduleGenerator sgen;
  Rng rng(seed);
  std::vector<std::future<serve::Prediction>> futures;
  for (int i = 0; i < requests; ++i) {
    const ir::Program p = test_program(static_cast<std::uint64_t>(i % 4));
    futures.push_back(service.submit(p, sgen.generate(p, rng)));
  }
  service.flush();
  for (auto& f : futures) f.get();
  service.quiesce();
}

TEST(ContinualScheduler, InjectedDriftTriggersCyclePromotesAndGcs) {
  ModelRegistry registry(scratch_dir("autopilot"));
  Rng rng(9);
  model::CostModel seed_model(model::ModelConfig::fast(), rng);
  const int v1 = registry.register_version(seed_model, fast_manifest("seed"));
  registry.promote(v1);
  // Two stale rejected candidates from "earlier runs": GC fodder.
  model::CostModel stale_a(model::ModelConfig::fast(), rng);
  model::CostModel stale_b(model::ModelConfig::fast(), rng);
  ModelManifest stale = fast_manifest("stale rejected candidate");
  stale.parent_version = v1;
  const int v2 = registry.register_version(stale_a, stale);
  const int v3 = registry.register_version(stale_b, stale);

  serve::PredictionService service(registry.load_active(), v1, trainer_serve_options());
  auto feedback = std::make_shared<serve::FeedbackBuffer>(serve::FeedbackBufferOptions{
      /*capacity=*/64, /*sample_fraction=*/1.0, /*seed=*/5});
  service.set_feedback(feedback);

  ContinualTrainerOptions topts;
  topts.data = tiny_data();
  topts.train.epochs = 2;
  topts.max_mape_regression = 10.0;  // generous gate: promotion is expected
  topts.min_shadow_spearman = -1.0;
  topts.feedback = feedback;
  topts.feedback_fraction = 0.5;
  ContinualTrainer trainer(registry, service, topts);

  ContinualSchedulerOptions sopts;
  sopts.drift.min_samples = 32;
  // Distribution signals off: with windows this small their sampling noise
  // is not negligible, and this test wants a fully deterministic trigger.
  sopts.drift.psi_threshold = 0.0;
  sopts.drift.ks_threshold = 0.0;
  // Standing-shadow disagreement as the injected, deterministic drift
  // signal: any disagreement at all over this bound fires.
  sopts.drift.max_shadow_mape = 1e-3;
  sopts.drift.min_shadow_requests = 16;
  sopts.drift.cooldown_observations = 2;
  sopts.gc.keep_last = 1;
  sopts.max_cycles = 1;
  ContinualScheduler scheduler(registry, service, trainer, sopts);

  // Calm traffic, then the first poll freezes the drift baseline.
  drive_traffic(service, 48, 1);
  EXPECT_FALSE(scheduler.poll_once());
  EXPECT_GT(scheduler.last_report().reference_size, 0u);
  EXPECT_EQ(scheduler.cycles_run(), 0u);

  // Healthy steady state: more calm traffic, still no trigger.
  drive_traffic(service, 48, 2);
  EXPECT_FALSE(scheduler.poll_once());

  // Inject drift: a standing shadow that disagrees with the incumbent.
  Rng shadow_rng(123);
  auto divergent =
      std::make_shared<model::CostModel>(model::ModelConfig::fast(), shadow_rng);
  service.set_shadow(divergent, 99, /*sample_fraction=*/1.0);
  drive_traffic(service, 48, 3);
  service.clear_shadow();

  // The autopilot: no manual run_cycle() — the poll detects drift, runs one
  // full cycle, promotes, and applies retention GC.
  ASSERT_TRUE(scheduler.poll_once());
  ASSERT_EQ(scheduler.cycles_run(), 1u);
  const std::vector<SchedulerEvent> events = scheduler.history();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].cycle_failed);
  EXPECT_TRUE(events[0].drift.shadow_mape.fired) << events[0].drift.reason;
  ASSERT_TRUE(events[0].cycle.promoted) << events[0].cycle.decision;
  const int candidate = events[0].cycle.candidate_version;
  EXPECT_EQ(candidate, v3 + 1);
  EXPECT_EQ(registry.active_version(), candidate);
  EXPECT_EQ(service.active_version(), candidate);

  // Measured feedback flowed into the fine-tune set.
  EXPECT_GT(events[0].cycle.feedback_samples, 0u);

  // Post-cycle GC: the stale rejected candidates expired; the active
  // candidate, its fine-tune parent (= rollback target) survive.
  EXPECT_EQ(events[0].gc.removed, (std::vector<int>{v2, v3}));
  EXPECT_EQ(events[0].gc.kept, (std::vector<int>{v1, candidate}));
  EXPECT_NO_THROW(registry.load_active());
  EXPECT_NO_THROW(registry.load(v1));

  // The monitor re-baselined and the budget is spent: sustained shadow
  // disagreement cannot trigger a second cycle.
  service.set_shadow(divergent, 99, 1.0);
  drive_traffic(service, 48, 4);
  EXPECT_FALSE(scheduler.poll_once());  // new baseline freezes here
  drive_traffic(service, 48, 5);
  EXPECT_FALSE(scheduler.poll_once());  // budget exhausted
  EXPECT_EQ(scheduler.cycles_run(), 1u);
}

TEST(ContinualScheduler, BackgroundThreadPollsQuietlyWithoutDrift) {
  ModelRegistry registry(scratch_dir("autopilot_idle"));
  Rng rng(11);
  model::CostModel seed_model(model::ModelConfig::fast(), rng);
  registry.promote(registry.register_version(seed_model, fast_manifest("seed")));
  serve::PredictionService service(registry.load_active(), 1, trainer_serve_options());
  ContinualTrainerOptions topts;
  topts.data = tiny_data();
  ContinualTrainer trainer(registry, service, topts);

  ContinualSchedulerOptions sopts;
  sopts.poll_interval = std::chrono::milliseconds(5);
  ContinualScheduler scheduler(registry, service, trainer, sopts);
  scheduler.start();
  scheduler.start();  // idempotent
  drive_traffic(service, 16, 6);
  while (scheduler.polls() < 3) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  scheduler.stop();
  const std::uint64_t polls_after_stop = scheduler.polls();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(scheduler.polls(), polls_after_stop);  // really stopped
  EXPECT_EQ(scheduler.cycles_run(), 0u);
  EXPECT_TRUE(scheduler.history().empty());
  scheduler.stop();  // idempotent
}

}  // namespace
}  // namespace tcm::registry
