// Train the paper's cost model end to end on freshly generated data:
// random programs -> random legal schedules -> measured speedups on the
// simulated machine -> featurization -> training with the paper's recipe
// (AdamW, One Cycle, structure-grouped batches of 32).
//
//   ./build/examples/train_cost_model [num_programs] [epochs]
#include <cstdio>
#include <cstdlib>

#include "datagen/dataset_builder.h"
#include "model/train.h"
#include "registry/model_registry.h"
#include "support/log.h"

using namespace tcm;

int main(int argc, char** argv) {
  const int num_programs = argc > 1 ? std::atoi(argv[1]) : 150;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 50;

  // --- 1. Generate the dataset (Section 3 of the paper) ----------------------
  datagen::DatasetBuildOptions opt;
  opt.num_programs = num_programs;
  opt.schedules_per_program = 16;
  opt.features = model::FeatureConfig::fast();
  std::printf("generating %d programs x %d schedules...\n", opt.num_programs,
              opt.schedules_per_program);
  const model::Dataset dataset = datagen::build_dataset(opt);
  std::printf("dataset: %zu (program, schedule, speedup) samples\n", dataset.size());

  // --- 2. 60/20/20 split by program -------------------------------------------
  const model::DatasetSplit split = model::split_by_program(dataset, 0.6, 0.2, 7);
  std::printf("split: %zu train / %zu validation / %zu test\n", split.train.size(),
              split.validation.size(), split.test.size());

  // --- 3. Train ----------------------------------------------------------------
  Rng rng(17);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  std::printf("model: %zu trainable parameters\n", cost_model.parameter_count());
  model::TrainOptions topt;
  topt.epochs = epochs;
  topt.verbose = true;
  topt.log_every = 10;
  set_log_level(tcm::LogLevel::Info);
  model::train_model(cost_model, split.train, &split.validation, topt);

  // --- 4. Evaluate (the paper's metrics) ----------------------------------------
  const model::EvalMetrics m = model::evaluate(cost_model, split.test);
  std::printf("\ntest set: MAPE %.3f | Pearson %.3f | Spearman %.3f (n=%zu)\n", m.mape,
              m.pearson, m.spearman, m.n);
  std::printf("paper (1.8M samples, 700 epochs): MAPE 0.16 | Pearson 0.90 | Spearman 0.95\n");

  // --- 5. Register and promote through the model registry -------------------------
  // The production path: serving loads checkpoints from the registry, never
  // from loose weight files (see examples/continual_loop.cpp for the full
  // retrain -> shadow -> promote loop).
  registry::ModelRegistry registry("cost_model_registry");
  registry::ModelManifest manifest;
  manifest.config = model::ModelConfig::fast();
  manifest.metrics = m;
  manifest.provenance = "train_cost_model: " + std::to_string(dataset.size()) + " samples, " +
                        std::to_string(epochs) + " epochs";
  const int version = registry.register_version(cost_model, manifest);
  registry.promote(version);
  std::printf("registered + promoted v%d under %s (load with ModelRegistry::load_active)\n",
              version, registry.root().c_str());
  return 0;
}
