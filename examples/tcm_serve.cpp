// tcm_serve: the cost model as a product — one daemon serving the versioned
// HTTP API (api/rest.h) over the full registry + prediction-service +
// autopilot stack owned by tcm::api::Service.
//
//   ./build/tcm_serve --registry serve_registry --port 8080 --bootstrap
//   curl localhost:8080/healthz
//   curl localhost:8080/v1/models
//   curl -d @request.json localhost:8080/v1/predict
//   curl localhost:8080/metrics
//
// Flags:
//   --registry DIR       model registry root (default "serve_registry")
//   --host A.B.C.D       listen address (default 127.0.0.1)
//   --port N             listen port (default 8080; 0 = ephemeral, printed)
//   --threads N          inference worker threads (default 2)
//   --http-threads N     HTTP connection workers (default 8)
//   --bootstrap          if the registry has no ACTIVE version, generate a
//                        small dataset, train an initial model, register and
//                        promote it (seconds at the default scale)
//   --bootstrap-programs N / --bootstrap-epochs N   bootstrap scale (24 / 8)
//   --autopilot          enable the drift-triggered continual-learning loop
//   --verbose            Debug-level logging to stderr (autopilot cycle progress)
//   --log-level LEVEL    debug|info|warn|error|off (flag wins over the
//                        TCM_LOG_LEVEL environment variable)
//   --trace-sample R     request trace sampling rate in [0,1] (default 0 =
//                        off); sampled spans at GET /debug/traces
//   --trace-out FILE     write the Chrome trace_event JSON of the sampled
//                        spans to FILE at shutdown (implies sampling is on:
//                        defaults --trace-sample to 1 when unset)
//   --slow-ms N          log a WARN line for requests slower than N ms
//                        (default 1000; 0 disables)
//   --admission-cap N    bound the batching queue at N requests; overload is
//                        shed with 429 + Retry-After and the degradation
//                        ladder engages under pressure (default 0 = off)
//   --default-deadline-ms N   server-side default request deadline; expired
//                        requests are shed with 504 (default 0 = none;
//                        clients tighten per request via X-Deadline-Ms)
//   --search-workers N   autoscheduling worker threads for POST /v1/search
//                        (default 2; 0 disables the search endpoints)
//   --search-queue-cap N bound on queued (not yet running) search jobs;
//                        overload is shed with 429 + Retry-After
//                        (default 16; 0 = unbounded)
//   --search-deadline-ms N   default whole-job search deadline; jobs past it
//                        fail with DEADLINE_EXCEEDED (default 0 = none;
//                        clients tighten per job via X-Deadline-Ms)
//   --search-memory PATH persistent schedule-reuse memory file (default
//                        "<registry>/schedule_memory.json"; recurring
//                        programs answer instantly with reused=true)
//   --failpoints SPEC    arm fault-injection sites, e.g.
//                        'registry.promote=crash;infer.throw=2*error'
//                        (needs a -DTCM_FAILPOINTS=ON build; the
//                        TCM_FAILPOINTS env var works too)
//   --flight-recorder-out FILE   dump the event-log flight recorder (the
//                        /debug/events JSON) to FILE on shutdown — and, via
//                        an async-signal-safe path, on a fatal signal
//                        (SIGSEGV/SIGABRT/SIGBUS/SIGFPE), so a crash leaves
//                        a postmortem of the last drift/cycle/promote/swap
//                        events on disk
//
// Graceful shutdown: SIGINT/SIGTERM stops the HTTP front end, quiesces the
// service and persists the measured-feedback reservoir (restored on the
// next start).
#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "api/rest.h"
#include "datagen/dataset_builder.h"
#include "model/train.h"
#include "obs/event_log.h"
#include "obs/trace.h"
#include "support/failpoint.h"
#include "support/log.h"

using namespace tcm;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

// Fatal-signal postmortem. Everything here must be async-signal-safe: the
// path is copied into a fixed buffer at startup, and the dump itself is
// open(2) + EventLog::dump_to_fd (snprintf into stack buffers + write(2) —
// no locks, no allocation).
char g_flight_recorder_path[4096] = {0};

void handle_fatal(int sig) {
  if (g_flight_recorder_path[0] != '\0') {
    const int fd = ::open(g_flight_recorder_path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd >= 0) {
      obs::EventLog::instance().dump_to_fd(fd);
      ::close(fd);
    }
  }
  // Restore the default action and re-raise so the exit status (and core
  // dump, when enabled) stay what the crash would have produced.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void install_fatal_handlers() {
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) std::signal(sig, handle_fatal);
}

// Trains and promotes an initial model so an empty registry can start
// serving; a no-op when an ACTIVE version already exists.
bool bootstrap_registry(const std::string& root, int num_programs, int epochs) {
  registry::ModelRegistry reg(root);
  if (reg.active_version() != 0) return true;

  std::printf("bootstrap: empty registry, generating %d programs...\n", num_programs);
  datagen::DatasetBuildOptions dopt;
  dopt.num_programs = num_programs;
  dopt.schedules_per_program = 8;
  dopt.generator = datagen::GeneratorOptions::tiny();
  dopt.features = model::FeatureConfig::fast();
  const model::Dataset dataset = datagen::build_dataset(dopt);

  Rng rng(17);
  model::CostModel initial(model::ModelConfig::fast(), rng);
  model::TrainOptions topt;
  topt.epochs = epochs;
  std::printf("bootstrap: training v1 on %zu samples (%d epochs)...\n", dataset.size(), epochs);
  model::train_model(initial, dataset, nullptr, topt);

  registry::ModelManifest manifest;
  manifest.config = model::ModelConfig::fast();
  manifest.provenance =
      "tcm_serve bootstrap: " + std::to_string(dataset.size()) + " synthetic samples";
  manifest.metrics = model::evaluate(initial, dataset);
  const int v1 = reg.register_version(initial, manifest);
  reg.promote(v1);
  std::printf("bootstrap: registered + promoted v%d (train MAPE %.3f)\n", v1,
              manifest.metrics.mape);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string registry_root = "serve_registry";
  std::string host = "127.0.0.1";
  int port = 8080;
  int threads = 2;
  int http_threads = 8;
  bool bootstrap = false;
  int bootstrap_programs = 24;
  int bootstrap_epochs = 8;
  bool autopilot = false;
  double trace_sample = 0.0;
  std::string trace_out;
  std::string flight_recorder_out;
  int slow_ms = 1000;
  int admission_cap = 0;
  int default_deadline_ms = 0;
  int search_workers = 2;
  int search_queue_cap = 16;
  int search_deadline_ms = 0;
  std::string search_memory;
  std::string failpoints;

  init_log_level_from_env();  // TCM_LOG_LEVEL; an explicit flag overrides
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--registry" && i + 1 < argc) registry_root = argv[++i];
    else if (arg == "--host" && i + 1 < argc) host = argv[++i];
    else if (arg == "--port" && i + 1 < argc) port = std::atoi(argv[++i]);
    else if (arg == "--threads" && i + 1 < argc) threads = std::atoi(argv[++i]);
    else if (arg == "--http-threads" && i + 1 < argc) http_threads = std::atoi(argv[++i]);
    else if (arg == "--bootstrap") bootstrap = true;
    else if (arg == "--bootstrap-programs" && i + 1 < argc) bootstrap_programs = std::atoi(argv[++i]);
    else if (arg == "--bootstrap-epochs" && i + 1 < argc) bootstrap_epochs = std::atoi(argv[++i]);
    else if (arg == "--autopilot") autopilot = true;
    else if (arg == "--verbose") set_log_level(LogLevel::Debug);
    else if (arg == "--log-level" && i + 1 < argc) {
      const std::string name = argv[++i];
      const auto level = parse_log_level(name);
      if (!level) {
        std::fprintf(stderr, "invalid --log-level '%s'\n", name.c_str());
        return 2;
      }
      set_log_level(*level);
    }
    else if (arg == "--trace-sample" && i + 1 < argc) trace_sample = std::atof(argv[++i]);
    else if (arg == "--trace-out" && i + 1 < argc) trace_out = argv[++i];
    else if (arg == "--flight-recorder-out" && i + 1 < argc) flight_recorder_out = argv[++i];
    else if (arg == "--slow-ms" && i + 1 < argc) slow_ms = std::atoi(argv[++i]);
    else if (arg == "--admission-cap" && i + 1 < argc) admission_cap = std::atoi(argv[++i]);
    else if (arg == "--default-deadline-ms" && i + 1 < argc)
      default_deadline_ms = std::atoi(argv[++i]);
    else if (arg == "--search-workers" && i + 1 < argc) search_workers = std::atoi(argv[++i]);
    else if (arg == "--search-queue-cap" && i + 1 < argc)
      search_queue_cap = std::atoi(argv[++i]);
    else if (arg == "--search-deadline-ms" && i + 1 < argc)
      search_deadline_ms = std::atoi(argv[++i]);
    else if (arg == "--search-memory" && i + 1 < argc) search_memory = argv[++i];
    else if (arg == "--failpoints" && i + 1 < argc) failpoints = argv[++i];
    else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (!trace_out.empty() && trace_sample <= 0) trace_sample = 1.0;
  obs::Tracer::instance().set_sample_rate(trace_sample);

  // Arm chaos sites before anything that contains one runs (bootstrap
  // promotes through registry.promote). The env var path is always honored;
  // an explicit --failpoints on a build without the sites is an operator
  // error, not a silent no-op.
  support::failpoint_arm_from_env();
  if (!failpoints.empty()) {
    if (!support::failpoints_compiled()) {
      std::fprintf(stderr,
                   "--failpoints requires a -DTCM_FAILPOINTS=ON build (sites are compiled out)\n");
      return 2;
    }
    std::string error;
    if (!support::failpoint_arm_spec(failpoints, &error)) {
      std::fprintf(stderr, "invalid --failpoints spec: %s\n", error.c_str());
      return 2;
    }
  }

  if (!flight_recorder_out.empty()) {
    if (flight_recorder_out.size() >= sizeof g_flight_recorder_path) {
      std::fprintf(stderr, "--flight-recorder-out path too long\n");
      return 2;
    }
    std::memcpy(g_flight_recorder_path, flight_recorder_out.c_str(),
                flight_recorder_out.size() + 1);
    install_fatal_handlers();
  }

  if (bootstrap) {
    try {
      bootstrap_registry(registry_root, bootstrap_programs, bootstrap_epochs);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bootstrap failed: %s\n", e.what());
      return 1;
    }
  }

  api::ServiceOptions sopt;
  sopt.registry_root = registry_root;
  sopt.serve.num_threads = threads;
  sopt.serve.features = model::FeatureConfig::fast();
  sopt.serve.max_queue_latency = std::chrono::microseconds(500);
  if (admission_cap > 0)
    sopt.serve.admission_queue_cap = static_cast<std::size_t>(admission_cap);
  if (default_deadline_ms > 0)
    sopt.serve.default_deadline = std::chrono::milliseconds(default_deadline_ms);
  sopt.enable_search = search_workers > 0;
  if (sopt.enable_search) {
    sopt.search.workers = search_workers;
    sopt.search.queue_cap = search_queue_cap > 0 ? static_cast<std::size_t>(search_queue_cap) : 0;
    if (search_deadline_ms > 0)
      sopt.search.default_deadline = std::chrono::milliseconds(search_deadline_ms);
    sopt.search.memory_path = search_memory;  // empty = <registry>/schedule_memory.json
  }
  sopt.enable_autopilot = autopilot;
  if (autopilot) {
    sopt.trainer.data.num_programs = bootstrap_programs / 2 + 1;
    sopt.trainer.data.schedules_per_program = 8;
    sopt.trainer.data.generator = datagen::GeneratorOptions::tiny();
    sopt.trainer.data.features = model::FeatureConfig::fast();
    sopt.trainer.train.epochs = 4;
    sopt.trainer.max_mape_regression = 2.0;
    sopt.trainer.min_shadow_spearman = 0.0;
    sopt.scheduler.drift.min_samples = 256;
    sopt.scheduler.poll_interval = std::chrono::milliseconds(500);
  }
  api::Result<std::unique_ptr<api::Service>> service = api::Service::open(std::move(sopt));
  if (!service.ok()) {
    std::fprintf(stderr, "cannot open service: %s\n(hint: pass --bootstrap to train an initial model)\n",
                 service.status().to_string().c_str());
    return 1;
  }

  api::HttpServerOptions hopt;
  hopt.host = host;
  hopt.port = port;
  hopt.num_threads = http_threads;
  hopt.slow_request_threshold = std::chrono::milliseconds(slow_ms);
  hopt.metrics = (*service)->metrics();    // one registry for /metrics
  hopt.watchdog = (*service)->watchdog();  // one watchdog for /healthz
  api::HttpServer server(hopt);
  api::bind_routes(server, **service);
  const api::Status started = server.start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start HTTP server: %s\n", started.to_string().c_str());
    return 1;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  obs::EventLog::instance().emit(
      "startup", "info",
      "tcm_serve listening on " + host + ":" + std::to_string(server.port()) + " model=v" +
          std::to_string((*service)->active_version()));
  // The "listening" line is the daemon's readiness signal (the CI smoke job
  // waits for it); keep the format stable.
  std::printf("tcm_serve: listening on %s:%d (model v%d, %d inference workers)\n", host.c_str(),
              server.port(), (*service)->active_version(), threads);
  std::fflush(stdout);

  while (g_stop == 0) std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::printf("tcm_serve: shutting down...\n");
  obs::EventLog::instance().emit("shutdown", "info", "signal received, draining");
  server.stop();
  (*service)->shutdown();  // quiesce + persist feedback
  if (!flight_recorder_out.empty()) {
    // Graceful path: the full render (not the signal-safe one) — same JSON
    // shape as GET /debug/events.
    std::ofstream out(flight_recorder_out, std::ios::binary | std::ios::trunc);
    if (out) {
      out << obs::EventLog::instance().render_json();
      std::printf("tcm_serve: wrote flight recorder to %s\n", flight_recorder_out.c_str());
    } else {
      std::fprintf(stderr, "tcm_serve: cannot write flight recorder to %s\n",
                   flight_recorder_out.c_str());
    }
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out, std::ios::binary | std::ios::trunc);
    if (out) {
      out << obs::Tracer::instance().export_chrome_json();
      std::printf("tcm_serve: wrote trace to %s\n", trace_out.c_str());
    } else {
      std::fprintf(stderr, "tcm_serve: cannot write trace to %s\n", trace_out.c_str());
    }
  }
  std::printf("tcm_serve: bye\n");
  return 0;
}
