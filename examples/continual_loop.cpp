// The continual-learning loop on autopilot, end to end and without downtime:
//
//   bootstrap: generate data -> train v1 -> register -> promote -> serve
//   autopilot: DriftMonitor watches live ServeStats + the recent-prediction
//              window; when the traffic distribution shifts, the
//              ContinualScheduler triggers a cycle on its own — fresh
//              synthetic data plus *measured* feedback (served schedules
//              re-executed on the simulator) fine-tune the incumbent, the
//              candidate shadow-canaries on live traffic, promotes with a
//              zero-downtime hot-swap, and retention GC expires old
//              rejected candidates.
//
// Nobody calls run_cycle() here: drift is injected by switching the client
// workload to programs the bootstrap distribution never saw, and the
// scheduler does the rest. Live client traffic flows the whole time.
//
//   ./build/continual_loop [num_programs] [timeout_seconds]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <thread>

#include "datagen/dataset_builder.h"
#include "model/train.h"
#include "support/log.h"
#include "registry/continual_scheduler.h"
#include "registry/continual_trainer.h"
#include "registry/model_registry.h"
#include "serve/feedback_buffer.h"
#include "serve/prediction_service.h"

using namespace tcm;

namespace {

// Spin-waits (while traffic flows) until `done` returns true or the
// deadline passes; returns whether the condition was met.
template <typename F>
bool wait_until(F done, std::chrono::seconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return done();
}

}  // namespace

int main(int argc, char** argv) {
  const int num_programs = argc > 1 ? std::atoi(argv[1]) : 40;
  const int timeout_seconds = argc > 2 ? std::atoi(argv[2]) : 180;
  // The autopilot reports through the leveled log (stderr) now that the
  // verbose stdout path is gone; cycle/drift progress logs at Debug so the
  // library stays quiet in tests — a demo wants to see it.
  set_log_level(LogLevel::Debug);

  // --- 1. Bootstrap: train and register the first model ---------------------
  datagen::DatasetBuildOptions dopt;
  dopt.num_programs = num_programs;
  dopt.schedules_per_program = 8;
  dopt.generator = datagen::GeneratorOptions::tiny();
  dopt.features = model::FeatureConfig::fast();
  std::printf("bootstrap: generating %d programs x %d schedules...\n", dopt.num_programs,
              dopt.schedules_per_program);
  const model::Dataset dataset = datagen::build_dataset(dopt);

  Rng rng(17);
  model::CostModel initial(model::ModelConfig::fast(), rng);
  model::TrainOptions topt;
  topt.epochs = 12;
  std::printf("bootstrap: training v1 on %zu samples (%d epochs)...\n", dataset.size(),
              topt.epochs);
  model::train_model(initial, dataset, nullptr, topt);

  const std::string registry_root = "continual_registry";
  std::filesystem::remove_all(registry_root);  // fresh demo root each run
  registry::ModelRegistry reg(registry_root);
  registry::ModelManifest manifest;
  manifest.config = model::ModelConfig::fast();
  manifest.provenance = "bootstrap: trained from scratch on " +
                        std::to_string(dataset.size()) + " samples";
  manifest.metrics = model::evaluate(initial, dataset);
  const int v1 = reg.register_version(initial, manifest);
  reg.promote(v1);
  // Two stale rejected candidates "left over from earlier sessions": the
  // retention GC's fodder once the autopilot promotes something newer.
  registry::ModelManifest stale;
  stale.config = model::ModelConfig::fast();
  stale.parent_version = v1;
  stale.provenance = "stale rejected candidate (earlier session)";
  model::CostModel stale_a(model::ModelConfig::fast(), rng);
  model::CostModel stale_b(model::ModelConfig::fast(), rng);
  const int stale1 = reg.register_version(stale_a, stale);
  const int stale2 = reg.register_version(stale_b, stale);
  std::printf("bootstrap: registered + promoted v%d (train MAPE %.3f); stale rejected v%d, v%d\n",
              v1, manifest.metrics.mape, stale1, stale2);

  // --- 2. Serve the registry's active version, with a feedback tap ----------
  serve::ServeOptions sopt;
  sopt.num_threads = 2;
  sopt.features = model::FeatureConfig::fast();
  sopt.max_queue_latency = std::chrono::microseconds(500);
  sopt.prediction_window = 512;  // drift window: recent predicted speedups
  serve::PredictionService service(reg.load_active(), reg.active_version(), sopt);
  auto feedback = std::make_shared<serve::FeedbackBuffer>(serve::FeedbackBufferOptions{
      /*capacity=*/256, /*sample_fraction=*/0.25, /*seed=*/5});
  service.set_feedback(feedback);
  std::printf("serving: v%d live\n\n", service.active_version());

  // Background client: steady live traffic for the whole run. Phase 0 draws
  // from the bootstrap distribution; phase 1 injects drift by switching to
  // much larger programs (extents and iteration counts the training
  // distribution never contained), which shifts the predicted-speedup
  // distribution the DriftMonitor watches.
  datagen::GeneratorOptions drifted = datagen::GeneratorOptions::tiny();
  drifted.min_extent = 48;
  drifted.max_extent = 160;
  drifted.min_iterations = 1 << 10;
  drifted.max_iterations = 1 << 21;
  datagen::RandomProgramGenerator calm_gen(datagen::GeneratorOptions::tiny());
  datagen::RandomProgramGenerator drift_gen(drifted);
  datagen::RandomScheduleGenerator sgen;
  std::atomic<int> phase{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::thread client([&] {
    Rng crng(23);
    while (!stop.load(std::memory_order_relaxed)) {
      const bool calm = phase.load(std::memory_order_relaxed) == 0;
      const ir::Program p = (calm ? calm_gen : drift_gen).generate(crng.next_u64() % 64);
      std::vector<std::future<serve::Prediction>> futures;
      for (int i = 0; i < 8; ++i) futures.push_back(service.submit(p, sgen.generate(p, crng)));
      service.flush();
      for (auto& f : futures) {
        try {
          f.get();
          ++served;
        } catch (const std::exception&) {
          // Featurization misses on drifted shapes feed the failure-rate
          // drift signal instead of killing the client.
        }
      }
    }
  });

  // --- 3. The autopilot ------------------------------------------------------
  registry::ContinualTrainerOptions copt;
  copt.data = dopt;
  copt.data.num_programs = num_programs / 2;  // fresh slice per cycle
  copt.train.epochs = 8;
  copt.max_mape_regression = 2.0;
  copt.min_shadow_spearman = 0.0;
  copt.feedback = feedback;          // measured feedback mixes into fine-tuning
  copt.feedback_fraction = 0.3;
  registry::ContinualTrainer trainer(reg, service, copt);

  registry::ContinualSchedulerOptions aopt;
  aopt.drift.min_samples = 128;
  aopt.drift.psi_threshold = 0.1;    // demo thresholds: sensitive on purpose
  aopt.drift.ks_threshold = 0.25;
  aopt.drift.max_failure_rate = 0.05;
  aopt.drift.cooldown_observations = 50;
  aopt.poll_interval = std::chrono::milliseconds(100);
  aopt.max_cycles = 1;               // retraining budget for this demo
  aopt.gc.keep_last = 1;             // aggressive retention: expire stale rejects
  registry::ContinualScheduler autopilot(reg, service, trainer, aopt);
  autopilot.start();
  std::printf("autopilot: polling every %lld ms (PSI > %.2f or KS > %.2f triggers)\n",
              static_cast<long long>(aopt.poll_interval.count()), aopt.drift.psi_threshold,
              aopt.drift.ks_threshold);

  if (!wait_until([&] { return autopilot.last_report().reference_size > 0; },
                  std::chrono::seconds(timeout_seconds / 3 + 1))) {
    std::printf("ERROR: drift baseline never froze (no traffic?)\n");
    stop.store(true); client.join(); autopilot.stop();
    return 1;
  }
  std::printf("autopilot: baseline frozen over %zu calm predictions "
              "(%llu requests served)\n\n",
              autopilot.last_report().reference_size,
              static_cast<unsigned long long>(served.load()));

  std::printf(">>> injecting drift: client switches to large-program traffic <<<\n\n");
  phase.store(1);

  const bool cycled = wait_until([&] { return autopilot.cycles_run() >= 1; },
                                 std::chrono::seconds(timeout_seconds));
  stop.store(true);
  client.join();
  autopilot.stop();
  if (!cycled) {
    std::printf("ERROR: autopilot never triggered within %ds\n", timeout_seconds);
    return 1;
  }

  // --- 4. What the autopilot did --------------------------------------------
  // Failed cycles are recorded but retried, so report the last *successful*
  // event (the one whose promotion is serving), not merely the first.
  const std::vector<registry::SchedulerEvent> events = autopilot.history();
  std::size_t success = events.size();
  for (std::size_t i = events.size(); i-- > 0;)
    if (!events[i].cycle_failed) { success = i; break; }
  const registry::SchedulerEvent& event = events[success == events.size() ? 0 : success];
  std::printf("\n=== autopilot event ===\n");
  std::printf("drift:   %s (window %zu vs reference %zu)\n", event.drift.reason.c_str(),
              event.drift.window_size, event.drift.reference_size);
  if (event.cycle_failed) {
    std::printf("cycle:   FAILED: %s\n", event.error.c_str());
    return 1;
  }
  std::printf("cycle:   v%d -> v%d: %s\n", event.cycle.incumbent_version,
              event.cycle.candidate_version, event.cycle.decision.c_str());
  std::printf("data:    %zu measured-feedback samples mixed into fine-tuning "
              "(%zu dropped), holdout MAPE %.3f -> %.3f\n",
              event.cycle.feedback_samples, event.cycle.feedback_dropped,
              event.cycle.incumbent_holdout.mape, event.cycle.candidate_holdout.mape);
  std::printf("gc:      removed %zu expired version(s):", event.gc.removed.size());
  for (int v : event.gc.removed) std::printf(" v%d", v);
  std::printf("  (kept:");
  for (int v : event.gc.kept) std::printf(" v%d", v);
  std::printf(")\n");

  const serve::ServeStats stats = service.stats();
  std::printf("\nregistry after autopilot:\n");
  for (const registry::ModelManifest& m : reg.list())
    std::printf("  v%d%s parent=v%d mape=%.3f  %s\n", m.version,
                m.version == reg.active_version() ? " [active]" : "         ", m.parent_version,
                m.metrics.mape, m.provenance.c_str());
  std::printf("service: v%d live, %llu served, %llu swaps, %llu failed, "
              "feedback %llu/%llu sampled/offered\n",
              service.active_version(), static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.model_swaps),
              static_cast<unsigned long long>(stats.failed_requests),
              static_cast<unsigned long long>(feedback->sampled()),
              static_cast<unsigned long long>(feedback->offered()));

  // The acceptance bar: a promotion happened with no manual run_cycle(), the
  // stale rejected candidates expired, and the ACTIVE checkpoint survived GC
  // intact (reloadable through its integrity-checked manifest).
  bool ok = event.cycle.promoted && reg.active_version() == event.cycle.candidate_version;
  for (int v : {stale1, stale2})
    ok = ok && !std::filesystem::exists(reg.version_dir(v));
  try {
    reg.load_active();
  } catch (const std::exception& e) {
    std::printf("ERROR: ACTIVE checkpoint unloadable after gc: %s\n", e.what());
    ok = false;
  }
  if (!ok) {
    std::printf("\nnote: autopilot ran but the promotion/GC acceptance bar was not met\n");
    return 1;
  }
  std::printf("\nactive version moved v%d -> v%d by drift trigger alone, zero downtime\n", v1,
              reg.active_version());
  return 0;
}
