// The full continual-learning loop, end to end and without downtime:
//
//   bootstrap: generate data -> train v1 -> register -> promote -> serve
//   loop:      fresh data -> fine-tune incumbent -> register candidate
//              -> shadow-canary on live traffic -> promote + hot-swap
//
// Live client traffic keeps flowing against the PredictionService the whole
// time; the swap happens between batches, so no request is dropped and every
// response is tagged with the version that produced it.
//
//   ./build/continual_loop [num_programs] [cycles]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>

#include "datagen/dataset_builder.h"
#include "model/train.h"
#include "registry/continual_trainer.h"
#include "registry/model_registry.h"
#include "serve/prediction_service.h"

using namespace tcm;

int main(int argc, char** argv) {
  const int num_programs = argc > 1 ? std::atoi(argv[1]) : 40;
  const int cycles = argc > 2 ? std::atoi(argv[2]) : 2;

  // --- 1. Bootstrap: train and register the first model ---------------------
  datagen::DatasetBuildOptions dopt;
  dopt.num_programs = num_programs;
  dopt.schedules_per_program = 8;
  dopt.features = model::FeatureConfig::fast();
  std::printf("bootstrap: generating %d programs x %d schedules...\n", dopt.num_programs,
              dopt.schedules_per_program);
  const model::Dataset dataset = datagen::build_dataset(dopt);

  Rng rng(17);
  model::CostModel initial(model::ModelConfig::fast(), rng);
  model::TrainOptions topt;
  topt.epochs = 12;
  std::printf("bootstrap: training v1 on %zu samples (%d epochs)...\n", dataset.size(),
              topt.epochs);
  model::train_model(initial, dataset, nullptr, topt);

  registry::ModelRegistry reg("continual_registry");
  registry::ModelManifest manifest;
  manifest.config = model::ModelConfig::fast();
  manifest.provenance = "bootstrap: trained from scratch on " +
                        std::to_string(dataset.size()) + " samples";
  manifest.metrics = model::evaluate(initial, dataset);
  const int v1 = reg.register_version(initial, manifest);
  reg.promote(v1);
  std::printf("bootstrap: registered and promoted v%d (train MAPE %.3f)\n", v1,
              manifest.metrics.mape);

  // --- 2. Serve the registry's active version -------------------------------
  serve::ServeOptions sopt;
  sopt.num_threads = 2;
  sopt.features = model::FeatureConfig::fast();
  sopt.max_queue_latency = std::chrono::microseconds(500);
  serve::PredictionService service(reg.load_active(), reg.active_version(), sopt);
  std::printf("serving: v%d live\n\n", service.active_version());

  // Background client: steady live traffic for the whole run, so the swaps
  // demonstrably happen under load.
  datagen::RandomProgramGenerator pgen(datagen::GeneratorOptions::tiny());
  datagen::RandomScheduleGenerator sgen;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::thread client([&] {
    Rng crng(23);
    while (!stop.load(std::memory_order_relaxed)) {
      const ir::Program p = pgen.generate(crng.next_u64() % 64);
      std::vector<std::future<serve::Prediction>> futures;
      for (int i = 0; i < 8; ++i) futures.push_back(service.submit(p, sgen.generate(p, crng)));
      service.flush();
      for (auto& f : futures) {
        f.get();
        ++served;
      }
    }
  });

  // --- 3. Continual-learning cycles ------------------------------------------
  registry::ContinualTrainerOptions copt;
  copt.data = dopt;
  copt.data.num_programs = num_programs / 2;  // fresh slice per cycle
  copt.train.epochs = 8;
  copt.max_mape_regression = 0.05;  // candidate may be at most 5% worse offline
  copt.min_shadow_spearman = 0.5;
  copt.verbose = true;
  registry::ContinualTrainer trainer(reg, service, copt);

  for (int cycle = 1; cycle <= cycles; ++cycle) {
    std::printf("--- cycle %d (incumbent v%d, %llu requests served so far) ---\n", cycle,
                service.active_version(), static_cast<unsigned long long>(served.load()));
    const registry::CycleReport report = trainer.run_cycle();
    std::printf("  holdout MAPE: incumbent %.3f -> candidate %.3f\n",
                report.incumbent_holdout.mape, report.candidate_holdout.mape);
    std::printf("  shadow canary: %llu requests, MAPE vs incumbent %.3f, spearman %.3f\n",
                static_cast<unsigned long long>(report.shadow_requests), report.shadow_mape,
                report.shadow_spearman);
    std::printf("  %s\n\n", report.decision.c_str());
  }

  stop.store(true);
  client.join();

  // --- 4. Final state ----------------------------------------------------------
  const serve::ServeStats stats = service.stats();
  std::printf("registry versions:\n");
  for (const registry::ModelManifest& m : reg.list())
    std::printf("  v%d%s parent=v%d mape=%.3f  %s\n", m.version,
                m.version == reg.active_version() ? " [active]" : "         ", m.parent_version,
                m.metrics.mape, m.provenance.c_str());
  std::printf("service: v%d live, %llu requests served, %llu swaps, 0 dropped (failed: %llu)\n",
              service.active_version(), static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.model_swaps),
              static_cast<unsigned long long>(stats.failed_requests));
  if (reg.active_version() == v1) {
    std::printf("note: no candidate passed the gate this run\n");
    return 1;
  }
  std::printf("active version moved v%d -> v%d with zero downtime\n", v1, reg.active_version());
  return 0;
}
