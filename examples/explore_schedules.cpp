// Explore how individual transformations change the simulated performance
// of classic kernels — a tour of the transformation engine and the machine
// model. Prints a mini-report per kernel: what each transformation does to
// the estimated execution time and why (cost breakdown).
//
//   ./build/examples/explore_schedules
#include <cstdio>
#include <vector>

#include "benchsuite/benchmarks.h"
#include "sim/machine_model.h"
#include "support/table.h"
#include "transforms/apply.h"

using namespace tcm;

namespace {

void report(const std::string& kernel, const ir::Program& p,
            const std::vector<std::pair<std::string, transforms::Schedule>>& schedules) {
  sim::MachineModel machine;
  const double base = machine.execution_time_seconds(p);
  Table table({"schedule", "legal", "time (ms)", "speedup", "arith Mcyc", "mem Mcyc"});
  table.add_row({"<none>", "yes", Table::fmt(base * 1e3, 3), "1.00", "-", "-"});
  for (const auto& [name, schedule] : schedules) {
    std::string why;
    if (!transforms::is_legal(p, schedule, &why)) {
      table.add_row({name, "NO: " + why, "-", "-", "-", "-"});
      continue;
    }
    const ir::Program t = transforms::apply_schedule(p, schedule);
    const auto b = machine.cost_breakdown(t);
    const double secs = machine.execution_time_seconds(t);
    table.add_row({name, "yes", Table::fmt(secs * 1e3, 3), Table::fmt(base / secs, 2),
                   Table::fmt(b.arith_cycles / 1e6, 1), Table::fmt(b.mem_cycles / 1e6, 1)});
  }
  std::printf("\n### %s\n%s", kernel.c_str(), table.to_string().c_str());
}

}  // namespace

int main() {
  // --- matmul-like: doitgen ---------------------------------------------------
  {
    const ir::Program p = benchsuite::make_doitgen(64, 64, 256, 128);
    std::vector<std::pair<std::string, transforms::Schedule>> schedules;
    transforms::Schedule s1;
    s1.parallels.push_back({0, 0});
    schedules.emplace_back("parallelize outer", s1);
    transforms::Schedule s2 = s1;
    s2.tiles.push_back({0, 2, {32, 32}});
    schedules.emplace_back("+ tile (p,s) 32x32", s2);
    transforms::Schedule s3 = s2;
    s3.unrolls.push_back({0, 4});
    s3.vectorizes.push_back({0, 8});
    schedules.emplace_back("+ unroll 4 + vectorize 8", s3);
    transforms::Schedule bad;
    bad.parallels.push_back({0, 3});  // reduction loop: illegal
    schedules.emplace_back("parallelize reduction loop", bad);
    report("doitgen (contraction)", p, schedules);
  }

  // --- stencil: heat2d ----------------------------------------------------------
  {
    const ir::Program p = benchsuite::make_heat2d(1024, 1024);
    std::vector<std::pair<std::string, transforms::Schedule>> schedules;
    transforms::Schedule s1;
    s1.parallels.push_back({0, 0});
    schedules.emplace_back("parallelize outer", s1);
    transforms::Schedule s2 = s1;
    s2.vectorizes.push_back({0, 8});
    schedules.emplace_back("+ vectorize 8", s2);
    transforms::Schedule s3;
    s3.interchanges.push_back({0, 0, 1});
    schedules.emplace_back("interchange y<->x (bad strides)", s3);
    transforms::Schedule s4;
    s4.parallels.push_back({0, 1});
    schedules.emplace_back("parallelize inner (overhead)", s4);
    report("heat2d (5-point stencil)", p, schedules);
  }

  // --- fusion: conv + relu ----------------------------------------------------
  {
    const ir::Program p = benchsuite::make_conv_relu(8, 3, 512, 512, 2, 3);
    std::vector<std::pair<std::string, transforms::Schedule>> schedules;
    transforms::Schedule s1;
    s1.parallels.push_back({0, 0});
    s1.parallels.push_back({1, 0});
    schedules.emplace_back("parallelize both", s1);
    transforms::Schedule s2 = s1;
    s2.fusions.push_back({0, 1, 4});
    schedules.emplace_back("+ fuse at depth 4 (locality)", s2);
    report("conv + relu (operator fusion)", p, schedules);
  }
  return 0;
}
