// Autoschedule the paper's convolution benchmark: train a small cost model,
// then drive beam search and MCTS with it, and compare against beam search
// with execution (the reference) — a miniature of the paper's Figure 6.
//
//   ./build/examples/autoschedule_conv
#include <cstdio>
#include <memory>

#include "benchsuite/benchmarks.h"
#include "datagen/dataset_builder.h"
#include "model/train.h"
#include "registry/model_registry.h"
#include "search/beam_search.h"
#include "search/mcts.h"

using namespace tcm;

int main() {
  // A small model trained on the fly (use examples/train_cost_model +
  // its registry for a better one).
  std::printf("training a small cost model (~2 minutes)...\n");
  datagen::DatasetBuildOptions dopt;
  dopt.num_programs = 120;
  dopt.schedules_per_program = 12;
  dopt.features = model::FeatureConfig::fast();
  const model::Dataset dataset = datagen::build_dataset(dopt);
  Rng rng(17);
  model::CostModel trained(model::ModelConfig::fast(), rng);
  model::TrainOptions topt;
  topt.epochs = 40;
  model::train_model(trained, dataset, nullptr, topt);

  // Ship the trained weights through the registry and search with the
  // reloaded checkpoint — the exact artifact production serving would use.
  registry::ModelRegistry registry("autoschedule_registry");
  registry::ModelManifest manifest;
  manifest.config = model::ModelConfig::fast();
  manifest.metrics = model::evaluate(trained, dataset);
  manifest.provenance = "autoschedule_conv: trained on the fly";
  registry.promote(registry.register_version(trained, manifest));
  std::unique_ptr<model::SpeedupPredictor> loaded = registry.load_active();
  model::SpeedupPredictor& cost_model = *loaded;
  std::printf("serving registry version v%d\n", registry.active_version());

  const ir::Program conv = benchsuite::make_convolution(8, 3, 256, 256, 2, 3);
  std::printf("\nbenchmark: convolution (batch 8, 256x256x3, 3x3 kernel)\n");

  // Reference: beam search evaluating candidates by (simulated) execution.
  search::ExecutionEvaluator exec_eval{sim::Executor()};
  const auto bse = search::beam_search(conv, exec_eval, {});
  std::printf("\nBS + execution   : %.2fx speedup, %lld evaluations, %.0f s toolchain time\n",
              bse.best_score, static_cast<long long>(bse.evaluations), bse.accounted_seconds);
  std::printf("  schedule: %s\n", bse.best_schedule.to_string().c_str());

  // Beam search guided by the learned model.
  search::ModelEvaluator model_eval(&cost_model, model::FeatureConfig::fast());
  const auto bsm = search::beam_search(conv, model_eval, {});
  sim::Executor measure;
  const double bsm_measured = measure.measure_speedup(conv, bsm.best_schedule);
  std::printf("\nBS + cost model  : %.2fx measured speedup, %.2f s inference time\n",
              bsm_measured, bsm.accounted_seconds);
  std::printf("  schedule: %s\n", bsm.best_schedule.to_string().c_str());
  std::printf("  search-time improvement vs execution: %.0fx\n",
              bse.accounted_seconds / std::max(1e-9, bsm.accounted_seconds));

  // MCTS: model-guided exploration plus execution of the retained set.
  search::ModelEvaluator mcts_model(&cost_model, model::FeatureConfig::fast());
  search::ExecutionEvaluator mcts_exec{sim::Executor()};
  search::MctsOptions mopt;
  mopt.iterations = 120;
  const auto mcts = search::mcts_search(conv, mcts_model, mcts_exec, mopt);
  std::printf("\nMCTS + cost model: %.2fx measured speedup (%d executed candidates)\n",
              mcts.best_measured_speedup, mopt.top_k);
  std::printf("  schedule: %s\n", mcts.best_schedule.to_string().c_str());
  return 0;
}
