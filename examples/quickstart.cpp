// Quickstart: write a TIRAMISU-style program, apply a schedule, check
// semantics, and estimate the speedup on the simulated machine.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "ir/builder.h"
#include "sim/executor.h"
#include "sim/interpreter.h"
#include "transforms/apply.h"

using namespace tcm;

int main() {
  // --- 1. The algorithm: a blur-then-scale pipeline -------------------------
  // (mirrors the paper's Section 2 example style)
  ir::ProgramBuilder b("pipeline");
  const int input = b.input("input", {514, 512});

  ir::Var y = b.var("y", 512), x = b.var("x", 512);
  const int blur = b.computation(
      "blur", {y, x}, {y, x},
      (b.load(input, {y, x}) + b.load(input, {y + 1, x}) + b.load(input, {y + 2, x})) /
          ir::SExpr(3.0));

  ir::Var y2 = b.var("y2", 512), x2 = b.var("x2", 512);
  b.computation("bright", {y2, x2}, {y2, x2},
                b.load(b.buffer_of(blur), {y2, x2}) * ir::SExpr(1.5));

  ir::Program program = b.build();
  std::printf("---- program ----\n%s\n", program.to_string().c_str());

  // --- 2. The schedule: the commands of the paper's Section 2 ----------------
  transforms::Schedule schedule;
  schedule.fusions.push_back({0, 1, 2});        // fuse blur+bright at depth 2
  schedule.tiles.push_back({0, 0, {64, 64}});   // tile y,x by 64x64
  schedule.unrolls.push_back({1, 4});           // unroll bright's innermost
  schedule.parallels.push_back({0, 0});         // parallelize the outer loop
  schedule.vectorizes.push_back({0, 8});        // vectorize blur's innermost
  std::printf("---- schedule ----\n%s\n\n", schedule.to_string().c_str());

  // --- 3. Legality and application -------------------------------------------
  std::string why;
  if (!transforms::is_legal(program, schedule, &why)) {
    std::printf("schedule rejected: %s\n", why.c_str());
    return 1;
  }
  const ir::Program transformed = transforms::apply_schedule(program, schedule);
  std::printf("---- transformed ----\n%s\n", transformed.to_string().c_str());

  // --- 4. Semantics check with the reference interpreter ----------------------
  const auto before = sim::Interpreter::execute(program, /*seed=*/1);
  const auto after = sim::Interpreter::execute(transformed, /*seed=*/1);
  std::printf("max relative difference after transformation: %g\n",
              sim::Interpreter::max_rel_difference(program, before, after));

  // --- 5. Estimated speedup on the simulated Xeon -----------------------------
  sim::Executor executor;
  const double t0 = executor.measure_seconds(program);
  const double t1 = executor.measure_seconds(transformed);
  std::printf("simulated time: %.4f ms -> %.4f ms (speedup %.2fx)\n", t0 * 1e3, t1 * 1e3,
              t0 / t1);
  return 0;
}
