# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-review
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[baselines_test]=] "/root/repo/build-review/baselines_test")
set_tests_properties([=[baselines_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;75;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[benchsuite_test]=] "/root/repo/build-review/benchsuite_test")
set_tests_properties([=[benchsuite_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;75;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[datagen_test]=] "/root/repo/build-review/datagen_test")
set_tests_properties([=[datagen_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;75;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[inference_test]=] "/root/repo/build-review/inference_test")
set_tests_properties([=[inference_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;75;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[integration_test]=] "/root/repo/build-review/integration_test")
set_tests_properties([=[integration_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;75;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[ir_test]=] "/root/repo/build-review/ir_test")
set_tests_properties([=[ir_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;75;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[model_test]=] "/root/repo/build-review/model_test")
set_tests_properties([=[model_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;75;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[nn_test]=] "/root/repo/build-review/nn_test")
set_tests_properties([=[nn_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;75;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[registry_test]=] "/root/repo/build-review/registry_test")
set_tests_properties([=[registry_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;75;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[search_test]=] "/root/repo/build-review/search_test")
set_tests_properties([=[search_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;75;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[serve_test]=] "/root/repo/build-review/serve_test")
set_tests_properties([=[serve_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;75;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[sim_test]=] "/root/repo/build-review/sim_test")
set_tests_properties([=[sim_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;75;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[support_test]=] "/root/repo/build-review/support_test")
set_tests_properties([=[support_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;75;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[transforms_test]=] "/root/repo/build-review/transforms_test")
set_tests_properties([=[transforms_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;75;add_test;/root/repo/CMakeLists.txt;0;")
