# Empty compiler generated dependencies file for bench_fig5_error_distribution.
# This may be replaced when dependencies are built.
