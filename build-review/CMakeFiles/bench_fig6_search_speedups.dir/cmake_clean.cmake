file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_search_speedups.dir/bench/bench_fig6_search_speedups.cc.o"
  "CMakeFiles/bench_fig6_search_speedups.dir/bench/bench_fig6_search_speedups.cc.o.d"
  "bench_fig6_search_speedups"
  "bench_fig6_search_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_search_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
