# Empty compiler generated dependencies file for bench_fig6_search_speedups.
# This may be replaced when dependencies are built.
