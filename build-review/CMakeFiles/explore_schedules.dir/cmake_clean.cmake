file(REMOVE_RECURSE
  "CMakeFiles/explore_schedules.dir/examples/explore_schedules.cpp.o"
  "CMakeFiles/explore_schedules.dir/examples/explore_schedules.cpp.o.d"
  "explore_schedules"
  "explore_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
