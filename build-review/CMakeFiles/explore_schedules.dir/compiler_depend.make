# Empty compiler generated dependencies file for explore_schedules.
# This may be replaced when dependencies are built.
