
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/halide_data.cc" "CMakeFiles/tcm_core.dir/src/baselines/halide_data.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/baselines/halide_data.cc.o.d"
  "/root/repo/src/baselines/halide_features.cc" "CMakeFiles/tcm_core.dir/src/baselines/halide_features.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/baselines/halide_features.cc.o.d"
  "/root/repo/src/baselines/halide_model.cc" "CMakeFiles/tcm_core.dir/src/baselines/halide_model.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/baselines/halide_model.cc.o.d"
  "/root/repo/src/benchsuite/benchmarks.cc" "CMakeFiles/tcm_core.dir/src/benchsuite/benchmarks.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/benchsuite/benchmarks.cc.o.d"
  "/root/repo/src/datagen/dataset_builder.cc" "CMakeFiles/tcm_core.dir/src/datagen/dataset_builder.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/datagen/dataset_builder.cc.o.d"
  "/root/repo/src/datagen/generator.cc" "CMakeFiles/tcm_core.dir/src/datagen/generator.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/datagen/generator.cc.o.d"
  "/root/repo/src/ir/access.cc" "CMakeFiles/tcm_core.dir/src/ir/access.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/ir/access.cc.o.d"
  "/root/repo/src/ir/builder.cc" "CMakeFiles/tcm_core.dir/src/ir/builder.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/ir/builder.cc.o.d"
  "/root/repo/src/ir/expr.cc" "CMakeFiles/tcm_core.dir/src/ir/expr.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/ir/expr.cc.o.d"
  "/root/repo/src/ir/program.cc" "CMakeFiles/tcm_core.dir/src/ir/program.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/ir/program.cc.o.d"
  "/root/repo/src/model/cost_model.cc" "CMakeFiles/tcm_core.dir/src/model/cost_model.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/model/cost_model.cc.o.d"
  "/root/repo/src/model/dataset.cc" "CMakeFiles/tcm_core.dir/src/model/dataset.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/model/dataset.cc.o.d"
  "/root/repo/src/model/featurize.cc" "CMakeFiles/tcm_core.dir/src/model/featurize.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/model/featurize.cc.o.d"
  "/root/repo/src/model/train.cc" "CMakeFiles/tcm_core.dir/src/model/train.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/model/train.cc.o.d"
  "/root/repo/src/nn/autograd.cc" "CMakeFiles/tcm_core.dir/src/nn/autograd.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/nn/autograd.cc.o.d"
  "/root/repo/src/nn/gradcheck.cc" "CMakeFiles/tcm_core.dir/src/nn/gradcheck.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/nn/gradcheck.cc.o.d"
  "/root/repo/src/nn/inference.cc" "CMakeFiles/tcm_core.dir/src/nn/inference.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/nn/inference.cc.o.d"
  "/root/repo/src/nn/modules.cc" "CMakeFiles/tcm_core.dir/src/nn/modules.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/nn/modules.cc.o.d"
  "/root/repo/src/nn/ops.cc" "CMakeFiles/tcm_core.dir/src/nn/ops.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/nn/ops.cc.o.d"
  "/root/repo/src/nn/optim.cc" "CMakeFiles/tcm_core.dir/src/nn/optim.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/nn/optim.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "CMakeFiles/tcm_core.dir/src/nn/serialize.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/nn/serialize.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "CMakeFiles/tcm_core.dir/src/nn/tensor.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/nn/tensor.cc.o.d"
  "/root/repo/src/registry/continual_trainer.cc" "CMakeFiles/tcm_core.dir/src/registry/continual_trainer.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/registry/continual_trainer.cc.o.d"
  "/root/repo/src/registry/model_registry.cc" "CMakeFiles/tcm_core.dir/src/registry/model_registry.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/registry/model_registry.cc.o.d"
  "/root/repo/src/search/beam_search.cc" "CMakeFiles/tcm_core.dir/src/search/beam_search.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/search/beam_search.cc.o.d"
  "/root/repo/src/search/candidates.cc" "CMakeFiles/tcm_core.dir/src/search/candidates.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/search/candidates.cc.o.d"
  "/root/repo/src/search/evaluator.cc" "CMakeFiles/tcm_core.dir/src/search/evaluator.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/search/evaluator.cc.o.d"
  "/root/repo/src/search/mcts.cc" "CMakeFiles/tcm_core.dir/src/search/mcts.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/search/mcts.cc.o.d"
  "/root/repo/src/serve/batcher.cc" "CMakeFiles/tcm_core.dir/src/serve/batcher.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/serve/batcher.cc.o.d"
  "/root/repo/src/serve/feature_cache.cc" "CMakeFiles/tcm_core.dir/src/serve/feature_cache.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/serve/feature_cache.cc.o.d"
  "/root/repo/src/serve/fingerprint.cc" "CMakeFiles/tcm_core.dir/src/serve/fingerprint.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/serve/fingerprint.cc.o.d"
  "/root/repo/src/serve/prediction_service.cc" "CMakeFiles/tcm_core.dir/src/serve/prediction_service.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/serve/prediction_service.cc.o.d"
  "/root/repo/src/sim/cache_sim.cc" "CMakeFiles/tcm_core.dir/src/sim/cache_sim.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/sim/cache_sim.cc.o.d"
  "/root/repo/src/sim/executor.cc" "CMakeFiles/tcm_core.dir/src/sim/executor.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/sim/executor.cc.o.d"
  "/root/repo/src/sim/interpreter.cc" "CMakeFiles/tcm_core.dir/src/sim/interpreter.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/sim/interpreter.cc.o.d"
  "/root/repo/src/sim/machine_model.cc" "CMakeFiles/tcm_core.dir/src/sim/machine_model.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/sim/machine_model.cc.o.d"
  "/root/repo/src/support/log.cc" "CMakeFiles/tcm_core.dir/src/support/log.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/support/log.cc.o.d"
  "/root/repo/src/support/rng.cc" "CMakeFiles/tcm_core.dir/src/support/rng.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/support/rng.cc.o.d"
  "/root/repo/src/support/stats.cc" "CMakeFiles/tcm_core.dir/src/support/stats.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/support/stats.cc.o.d"
  "/root/repo/src/support/table.cc" "CMakeFiles/tcm_core.dir/src/support/table.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/support/table.cc.o.d"
  "/root/repo/src/transforms/apply.cc" "CMakeFiles/tcm_core.dir/src/transforms/apply.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/transforms/apply.cc.o.d"
  "/root/repo/src/transforms/dependence.cc" "CMakeFiles/tcm_core.dir/src/transforms/dependence.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/transforms/dependence.cc.o.d"
  "/root/repo/src/transforms/schedule.cc" "CMakeFiles/tcm_core.dir/src/transforms/schedule.cc.o" "gcc" "CMakeFiles/tcm_core.dir/src/transforms/schedule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
