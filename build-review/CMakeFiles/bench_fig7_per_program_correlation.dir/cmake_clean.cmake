file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_per_program_correlation.dir/bench/bench_fig7_per_program_correlation.cc.o"
  "CMakeFiles/bench_fig7_per_program_correlation.dir/bench/bench_fig7_per_program_correlation.cc.o.d"
  "bench_fig7_per_program_correlation"
  "bench_fig7_per_program_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_per_program_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
