# Empty compiler generated dependencies file for continual_loop.
# This may be replaced when dependencies are built.
