file(REMOVE_RECURSE
  "CMakeFiles/continual_loop.dir/examples/continual_loop.cpp.o"
  "CMakeFiles/continual_loop.dir/examples/continual_loop.cpp.o.d"
  "continual_loop"
  "continual_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continual_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
