file(REMOVE_RECURSE
  "CMakeFiles/bench_halide_comparison.dir/bench/bench_halide_comparison.cc.o"
  "CMakeFiles/bench_halide_comparison.dir/bench/bench_halide_comparison.cc.o.d"
  "bench_halide_comparison"
  "bench_halide_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_halide_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
