# Empty dependencies file for bench_halide_comparison.
# This may be replaced when dependencies are built.
