file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_architectures.dir/bench/bench_ablation_architectures.cc.o"
  "CMakeFiles/bench_ablation_architectures.dir/bench/bench_ablation_architectures.cc.o.d"
  "bench_ablation_architectures"
  "bench_ablation_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
