# Empty dependencies file for bench_ablation_architectures.
# This may be replaced when dependencies are built.
