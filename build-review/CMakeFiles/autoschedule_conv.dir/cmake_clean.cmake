file(REMOVE_RECURSE
  "CMakeFiles/autoschedule_conv.dir/examples/autoschedule_conv.cpp.o"
  "CMakeFiles/autoschedule_conv.dir/examples/autoschedule_conv.cpp.o.d"
  "autoschedule_conv"
  "autoschedule_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoschedule_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
