# Empty compiler generated dependencies file for autoschedule_conv.
# This may be replaced when dependencies are built.
