file(REMOVE_RECURSE
  "CMakeFiles/train_cost_model.dir/examples/train_cost_model.cpp.o"
  "CMakeFiles/train_cost_model.dir/examples/train_cost_model.cpp.o.d"
  "train_cost_model"
  "train_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
