# Empty compiler generated dependencies file for tcm_bench_common.
# This may be replaced when dependencies are built.
