file(REMOVE_RECURSE
  "CMakeFiles/tcm_bench_common.dir/bench/common.cc.o"
  "CMakeFiles/tcm_bench_common.dir/bench/common.cc.o.d"
  "libtcm_bench_common.a"
  "libtcm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
