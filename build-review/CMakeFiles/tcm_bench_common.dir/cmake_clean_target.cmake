file(REMOVE_RECURSE
  "libtcm_bench_common.a"
)
