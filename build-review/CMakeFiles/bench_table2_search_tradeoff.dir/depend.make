# Empty dependencies file for bench_table2_search_tradeoff.
# This may be replaced when dependencies are built.
