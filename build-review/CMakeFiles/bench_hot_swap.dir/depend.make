# Empty dependencies file for bench_hot_swap.
# This may be replaced when dependencies are built.
