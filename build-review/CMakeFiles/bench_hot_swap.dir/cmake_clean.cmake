file(REMOVE_RECURSE
  "CMakeFiles/bench_hot_swap.dir/bench/bench_hot_swap.cc.o"
  "CMakeFiles/bench_hot_swap.dir/bench/bench_hot_swap.cc.o.d"
  "bench_hot_swap"
  "bench_hot_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hot_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
